#![cfg(feature = "faulty")]

//! Chaos suite: every injected fault — panicking, hanging, slow and
//! flaky tenants, plus crashes at the checkpoint protocol's weak spots
//! — must leave the *other* tenants' committed outputs bitwise
//! identical to a fault-free run, and recovery must neither lose nor
//! duplicate committed events.

use std::time::Duration;

use sintel_pipeline::policy::RunPolicy;
use sintel_pipeline::template::{StepSpec, Template};
use sintel_primitives::HyperValue;
use sintel_serve::fault::{arm, disarm, CrashPoint};
use sintel_serve::{
    Admission, IngestEvent, ServeConfig, ServeEngine, ServeError, TenantSpec,
};
use sintel_store::SintelDb;

const HEALTHY: [&str; 2] = ["healthy-a", "healthy-b"];
const VICTIM: &str = "victim";

fn healthy_template() -> Template {
    Template {
        name: "chaos_healthy".into(),
        steps: vec![
            StepSpec::plain("azure_anomaly_service"),
            StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
        ],
    }
}

fn chaos_config() -> ServeConfig {
    ServeConfig {
        window: 128,
        hop: 32,
        min_points: 32,
        breaker_threshold: 3,
        breaker_cooldown: 1,
        quarantine_trips: 2,
        policy: RunPolicy::single_attempt(Duration::from_millis(300)),
        ..ServeConfig::for_tests()
    }
}

/// Deterministic per-tenant stream: phase keyed off the tenant name,
/// one spike per tenant.
fn events_for(tenants: &[&str], len: i64) -> Vec<IngestEvent> {
    let mut events = Vec::new();
    for t in 0..len {
        for name in tenants {
            let phase = (name.len() as f64) * 0.13 + 0.11;
            let spike = if t == 70 { 5.0 } else { 0.0 };
            events.push(IngestEvent::new(name, "cpu", t, (t as f64 * phase).sin() + spike));
        }
    }
    events
}

/// Run a full stream through an engine with the given tenants; victims
/// may shed/degrade, healthy tenants must always be `Accepted`.
fn run(specs: Vec<TenantSpec>, tenants: &[&str], len: i64) -> ServeEngine {
    let mut engine =
        ServeEngine::open(SintelDb::in_memory(), chaos_config(), specs).expect("open engine");
    for (i, event) in events_for(tenants, len).iter().enumerate() {
        let admission = engine.offer(event).expect("offer");
        if event.tenant != VICTIM {
            assert_eq!(admission, Admission::Accepted, "healthy ingest must never be refused");
        }
        if (i + 1) % 31 == 0 {
            engine.tick().expect("tick");
        }
    }
    engine.tick().expect("tick");
    engine
}

/// Healthy-tenant committed events of a run with `victim_template`
/// present, asserted bitwise-equal to a victimless baseline; returns
/// the faulted engine for victim-side assertions.
fn assert_healthy_isolated(victim_template: Template) -> ServeEngine {
    let baseline_specs: Vec<TenantSpec> =
        HEALTHY.iter().map(|n| TenantSpec::new(n, 5, healthy_template())).collect();
    let baseline = run(baseline_specs, &HEALTHY, 200);

    let mut specs: Vec<TenantSpec> =
        HEALTHY.iter().map(|n| TenantSpec::new(n, 5, healthy_template())).collect();
    specs.push(TenantSpec::new(VICTIM, 5, victim_template));
    let all: Vec<&str> = HEALTHY.iter().copied().chain(std::iter::once(VICTIM)).collect();
    let faulted = run(specs, &all, 200);

    for tenant in HEALTHY {
        assert_eq!(
            faulted.committed_events(tenant),
            baseline.committed_events(tenant),
            "tenant '{tenant}' was not isolated from the victim"
        );
        assert!(!baseline.committed_events(tenant).is_empty(), "spike must be detected");
    }
    faulted
}

#[test]
fn panicking_tenant_is_quarantined_and_isolated() {
    let engine = assert_healthy_isolated(Template {
        name: "chaos_panic".into(),
        steps: vec![StepSpec::plain("faulty_panic")],
    });
    let stats = engine.stats();
    let victim = &stats.tenants[VICTIM];
    assert!(victim.quarantined, "repeated panics must quarantine the tenant");
    assert!(victim.breaker_trips >= 2, "quarantine requires two trips");
    assert!(victim.pass_failures >= 3, "threshold-many failures before the first trip");

    // Quarantined ingest is shed at admission.
    let mut engine = engine;
    let admission = engine.offer(&IngestEvent::new(VICTIM, "cpu", 10_000, 0.0)).expect("offer");
    assert_eq!(admission, Admission::Shed);
}

#[test]
fn hanging_tenant_degrades_to_fallback_and_is_isolated() {
    let engine = assert_healthy_isolated(Template {
        name: "chaos_hang".into(),
        steps: vec![StepSpec::with("faulty_hang", &[("sleep_ms", HyperValue::Int(60_000))])],
    });
    let stats = engine.stats();
    let victim = &stats.tenants[VICTIM];
    assert!(victim.degraded, "a pass timeout must degrade the tenant to the fallback");
    assert!(!victim.quarantined, "degradation, not quarantine, is the overload response");
    assert!(victim.emitted > 0, "the fallback pipeline must keep emitting for the victim");
}

#[test]
fn slow_tenant_degrades_to_fallback_and_is_isolated() {
    let engine = assert_healthy_isolated(Template {
        name: "chaos_slow".into(),
        steps: vec![StepSpec::with("faulty_slow", &[("ms_per_row", HyperValue::Int(50))])],
    });
    let stats = engine.stats();
    let victim = &stats.tenants[VICTIM];
    assert!(victim.degraded, "a slow consumer must be degraded, not left to block the tier");
    assert!(!victim.quarantined);
}

#[test]
fn flaky_tenant_recovers_without_tripping() {
    sintel_primitives::faulty::reset_flaky_counter("chaos-flaky");
    let engine = assert_healthy_isolated(Template {
        name: "chaos_flaky".into(),
        steps: vec![
            StepSpec::with(
                "faulty_flaky",
                &[
                    ("fail_first_n", HyperValue::Int(2)),
                    ("key", HyperValue::Text("chaos-flaky".into())),
                ],
            ),
            StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
        ],
    });
    let stats = engine.stats();
    let victim = &stats.tenants[VICTIM];
    assert!(victim.pass_failures >= 1, "the first flaky passes must fail");
    assert_eq!(victim.breaker_trips, 0, "sub-threshold flakiness must not trip the breaker");
    assert!(!victim.quarantined);
    assert!(!victim.degraded);
    assert!(victim.passes_run > victim.pass_failures, "later passes must succeed");
}

/// Both checkpoint-protocol crash points, driven in one test because
/// the armed crash point is process-global state.
#[test]
fn checkpoint_crash_points_recover_exactly_once() {
    disarm();
    for point in CrashPoint::ALL {
        // Reference: fault-free run over the same stream.
        let reference =
            run(vec![TenantSpec::new("acme", 5, healthy_template())], &["acme"], 256)
                .committed_events("acme");
        assert!(!reference.is_empty());

        // Faulted run: crash at `point` mid-stream, recover, replay all.
        let mut engine = ServeEngine::open(
            SintelDb::in_memory(),
            chaos_config(),
            vec![TenantSpec::new("acme", 5, healthy_template())],
        )
        .expect("open");
        let events = events_for(&["acme"], 256);
        for event in &events[..150] {
            engine.offer(event).expect("offer");
            // Tick occasionally so there is committed history to protect.
            if event.timestamp % 41 == 0 {
                engine.tick().expect("tick");
            }
        }
        arm(point);
        let crash = engine.tick();
        assert!(
            matches!(crash, Err(ServeError::Injected(label)) if label == point.label()),
            "tick must crash at the armed point {point:?}"
        );

        // "kill -9": only the store survives.
        let db = engine.into_db();
        let committed_at_crash = {
            let mut probe = ServeEngine::open(
                db,
                chaos_config(),
                vec![TenantSpec::new("acme", 5, healthy_template())],
            )
            .expect("recover");
            let n = probe.committed_events("acme").len();
            for event in &events {
                probe.offer(event).expect("offer");
            }
            probe.tick().expect("tick");
            let recovered = probe.committed_events("acme");
            assert_eq!(
                recovered, reference,
                "crash at {point:?}: replay must commit identical events"
            );
            for (i, ev) in recovered.iter().enumerate() {
                assert_eq!(ev.seq, i as u64, "crash at {point:?}: seq must stay dense");
            }
            n
        };
        assert!(
            committed_at_crash <= reference.len(),
            "a crash cannot commit more than the fault-free run"
        );
    }
}

fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .expect("VmRSS line")
}

/// Bounded soak: misbehaving tenants alongside healthy ones for
/// `SINTEL_SOAK_SECS` (default 30) wall seconds. Healthy outputs must
/// stay bitwise identical to a fault-free run over the same accepted
/// stream, and RSS must stay bounded. Run explicitly:
/// `cargo test -p sintel-serve --features faulty -- --ignored soak_`.
#[test]
#[ignore]
fn soak_misbehaving_tenants_stay_bounded() {
    const RSS_CAP_KB: u64 = 768 * 1024;
    let secs: u64 = std::env::var("SINTEL_SOAK_SECS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(30);

    sintel_primitives::faulty::reset_flaky_counter("soak-flaky");
    let mut specs: Vec<TenantSpec> =
        HEALTHY.iter().map(|n| TenantSpec::new(n, 5, healthy_template())).collect();
    specs.push(TenantSpec::new(
        "soak-panic",
        5,
        Template { name: "soak_panic".into(), steps: vec![StepSpec::plain("faulty_panic")] },
    ));
    specs.push(TenantSpec::new(
        "soak-flaky",
        5,
        Template {
            name: "soak_flaky".into(),
            steps: vec![
                StepSpec::with(
                    "faulty_flaky",
                    &[
                        ("fail_first_n", HyperValue::Int(1_000_000)),
                        ("key", HyperValue::Text("soak-flaky".into())),
                    ],
                ),
                StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
            ],
        },
    ));
    let mut engine =
        ServeEngine::open(SintelDb::in_memory(), chaos_config(), specs).expect("open");

    let value_at = |name: &str, t: i64| {
        let phase = (name.len() as f64) * 0.13 + 0.11;
        (t as f64 * phase).sin() + if t % 997 == 0 && t > 0 { 5.0 } else { 0.0 }
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(secs);
    let mut t: i64 = 0;
    let victims = ["soak-panic", "soak-flaky"];
    while std::time::Instant::now() < deadline {
        for _ in 0..64 {
            for name in HEALTHY.iter().chain(victims.iter()) {
                let event = IngestEvent::new(name, "cpu", t, value_at(name, t));
                let admission = engine.offer(&event).expect("offer");
                if !victims.contains(name) {
                    assert_eq!(admission, Admission::Accepted);
                }
            }
            t += 1;
        }
        engine.tick().expect("tick");
        let rss = rss_kb();
        assert!(rss < RSS_CAP_KB, "RSS {rss} kB exceeded the {RSS_CAP_KB} kB soak cap");
    }

    // Fault-free reference over the identical healthy stream.
    let mut reference = ServeEngine::open(
        SintelDb::in_memory(),
        chaos_config(),
        HEALTHY.iter().map(|n| TenantSpec::new(n, 5, healthy_template())).collect(),
    )
    .expect("open reference");
    for tt in 0..t {
        for name in HEALTHY {
            reference
                .offer(&IngestEvent::new(name, "cpu", tt, value_at(name, tt)))
                .expect("offer");
        }
        if tt % 64 == 63 {
            reference.tick().expect("tick");
        }
    }
    reference.tick().expect("tick");
    for tenant in HEALTHY {
        assert_eq!(
            engine.committed_events(tenant),
            reference.committed_events(tenant),
            "soak: tenant '{tenant}' diverged from the fault-free reference"
        );
    }
    let stats = engine.stats();
    assert!(stats.tenants["soak-panic"].quarantined, "the panicking tenant must be parked");
}

//! Per-tenant streaming sessions: sliding-window buffers, detection
//! passes and checkpoint (de)serialization.
//!
//! The determinism contract of the serving tier lives here: **emissions
//! are a pure function of the accepted event sequence**. Two mechanisms
//! make that true:
//!
//! * passes fire at *event-count boundaries* (every `hop`-th sample
//!   absorbed into a signal's buffer), never at tick or wall-clock
//!   boundaries, so how callers batch `offer`/`tick` cannot change what
//!   is detected;
//! * every pass rebuilds and refits its pipeline on the buffered window
//!   (a pure function of the window), so a session recovered from a
//!   checkpoint produces byte-identical emissions to one that never
//!   crashed.
//!
//! Buffer appends are idempotent (stale timestamps are dropped), which
//! upgrades at-least-once ingest replay into exactly-once absorption —
//! the crash-recovery property test replays the *whole* stream from the
//! beginning and still gets an identical committed event sequence.

use std::collections::BTreeMap;

use sintel_pipeline::policy::{classify_pipeline_error, run_with_policy, Failure, FailureKind};
use sintel_pipeline::Template;
use sintel_store::Doc;
use sintel_timeseries::Signal;

use crate::breaker::{Breaker, BreakerEvent, BreakerState};
use crate::engine::ServeConfig;
use crate::event::{AnomalyEvent, IngestEvent};
use crate::{Result, ServeError};

/// Sliding sample buffer for one signal of one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalBuffer {
    timestamps: Vec<i64>,
    values: Vec<f64>,
    /// Samples ever absorbed (drives the `hop` pass schedule; never
    /// decreases when the buffer slides).
    ingested: u64,
    /// Emission watermark: anomaly intervals ending at or before this
    /// timestamp have already been emitted. Deduplicates re-detections
    /// of the same anomaly on successive overlapping windows.
    emitted_until: i64,
}

impl SignalBuffer {
    fn new() -> Self {
        Self { timestamps: Vec::new(), values: Vec::new(), ingested: 0, emitted_until: i64::MIN }
    }

    /// Absorb one sample; returns `false` for stale/duplicate
    /// timestamps (idempotent replay). Slides the window past `window`
    /// samples.
    fn push(&mut self, timestamp: i64, value: f64, window: usize) -> bool {
        if self.timestamps.last().is_some_and(|&last| timestamp <= last) {
            return false;
        }
        self.timestamps.push(timestamp);
        self.values.push(value);
        self.ingested += 1;
        if self.timestamps.len() > window {
            let excess = self.timestamps.len() - window;
            self.timestamps.drain(..excess);
            self.values.drain(..excess);
        }
        true
    }

    /// Buffered sample count.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Newest buffered timestamp.
    pub fn last_timestamp(&self) -> Option<i64> {
        self.timestamps.last().copied()
    }
}

/// Everything one tick of processing produced for one tenant, for the
/// engine to commit, count and expose as metrics.
#[derive(Debug, Default, Clone)]
pub struct PassReport {
    /// Newly emitted anomaly events, emission order.
    pub events: Vec<AnomalyEvent>,
    /// Samples actually absorbed into buffers.
    pub absorbed: u64,
    /// Stale/duplicate samples dropped by idempotent replay.
    pub stale_dropped: u64,
    /// Detection passes attempted.
    pub passes_run: u64,
    /// Scheduled passes skipped (breaker open or tenant quarantined).
    pub passes_skipped: u64,
    /// Attempted passes that failed their run policy.
    pub pass_failures: u64,
    /// Wall time spent inside detection passes (volatile: the only
    /// nondeterministic field in a report; never feeds back into
    /// emission decisions).
    pub pass_seconds: f64,
    /// Breaker trips that happened this tick.
    pub tripped: u64,
    /// The tenant degraded to the fallback pipeline this tick.
    pub degraded_now: bool,
    /// The tenant was quarantined this tick.
    pub quarantined_now: bool,
}

/// Count one breaker state transition in the global metrics registry,
/// labelled by destination state. Purely observational: emission
/// decisions never read the registry back.
fn breaker_transition(to: &str) {
    sintel_obs::counter_add(
        &sintel_obs::labeled("sintel_serve_breaker_transitions_total", &[("to", to)]),
        1,
    );
}

/// One tenant's streaming session state.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSession {
    tenant: String,
    /// Scheduled detection passes so far (the breaker's logical clock).
    pass_counter: u64,
    /// Next emission sequence number.
    next_seq: u64,
    /// Running on the cheap fallback pipeline.
    degraded: bool,
    /// Permanently parked after repeated breaker trips.
    quarantined: bool,
    breaker: Breaker,
    buffers: BTreeMap<String, SignalBuffer>,
}

impl TenantSession {
    /// A fresh session for `tenant`.
    pub fn new(tenant: &str) -> Self {
        Self {
            tenant: tenant.to_string(),
            pass_counter: 0,
            next_seq: 0,
            degraded: false,
            quarantined: false,
            breaker: Breaker::new(),
            buffers: BTreeMap::new(),
        }
    }

    /// Tenant name.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Scheduled pass count.
    pub fn pass_counter(&self) -> u64 {
        self.pass_counter
    }

    /// Next emission sequence number.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Whether the session runs the fallback pipeline.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Whether the session is permanently parked.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// The session's circuit breaker.
    pub fn breaker(&self) -> &Breaker {
        &self.breaker
    }

    /// Buffered signal names, sorted.
    pub fn signals(&self) -> Vec<&str> {
        self.buffers.keys().map(String::as_str).collect()
    }

    /// One signal's buffer, if any samples arrived for it.
    pub fn buffer(&self, signal: &str) -> Option<&SignalBuffer> {
        self.buffers.get(signal)
    }

    /// Switch to the fallback pipeline (graceful degradation). The
    /// engine calls this when a tenant's backlog exceeds the degrade
    /// depth; sessions also self-degrade on a pass timeout.
    pub fn degrade(&mut self, report: &mut PassReport) {
        if !self.degraded {
            self.degraded = true;
            report.degraded_now = true;
        }
    }

    /// Absorb one ingest event, running any detection pass that falls
    /// due at this event-count boundary. `template` is the tenant's
    /// configured pipeline; the fallback and all scheduling knobs come
    /// from `cfg`.
    pub fn absorb(
        &mut self,
        event: &IngestEvent,
        template: &Template,
        cfg: &ServeConfig,
        report: &mut PassReport,
    ) {
        let buffer = self.buffers.entry(event.signal.clone()).or_insert_with(SignalBuffer::new);
        if !buffer.push(event.timestamp, event.value, cfg.window) {
            report.stale_dropped += 1;
            return;
        }
        report.absorbed += 1;
        let due = buffer.ingested % cfg.hop == 0 && buffer.len() >= cfg.min_points;
        if !due {
            return;
        }
        self.pass_counter += 1;
        if self.quarantined {
            report.passes_skipped += 1;
            return;
        }
        let was_open = matches!(self.breaker.state(), BreakerState::Open { .. });
        if !self.breaker.try_pass(self.pass_counter) {
            report.passes_skipped += 1;
            return;
        }
        if was_open {
            // Cooldown elapsed: Open -> HalfOpen, probe allowed through.
            breaker_transition("half_open");
        }
        self.run_pass(&event.signal, template, cfg, report);
    }

    /// One detection pass over `signal`'s buffered window, under the
    /// run policy. Success emits watermark-deduplicated events; failure
    /// feeds the breaker (and a timeout degrades the tenant first).
    fn run_pass(
        &mut self,
        signal: &str,
        template: &Template,
        cfg: &ServeConfig,
        report: &mut PassReport,
    ) {
        let pass = self.pass_counter;
        let Some(buffer) = self.buffers.get(signal) else {
            return;
        };
        // Buffer timestamps are strictly increasing by construction, so
        // this cannot fail; bail out defensively rather than unwrap.
        let Ok(snapshot) =
            Signal::univariate(signal, buffer.timestamps.clone(), buffer.values.clone())
        else {
            return;
        };
        let chosen = if self.degraded { cfg.fallback.clone() } else { template.clone() };
        let task = move || {
            let fail = |e: &sintel_pipeline::PipelineError| {
                Failure::new(classify_pipeline_error(e), e.to_string())
            };
            let mut pipeline = chosen.build_default().map_err(|e| fail(&e))?;
            pipeline.fit(&snapshot).map_err(|e| fail(&e))?;
            pipeline.detect_incremental(&snapshot).map_err(|e| fail(&e))
        };
        report.passes_run += 1;
        let span = sintel_obs::span_with(
            "serve.pass",
            &[("tenant", sintel_obs::FieldValue::from(self.tenant.as_str()))],
        );
        let (result, _attempts) = run_with_policy(&cfg.policy, task);
        let elapsed = span.close();
        sintel_obs::observe_duration("sintel_serve_pass_seconds", elapsed);
        sintel_obs::rollup_observe("sintel_serve_pass_window_seconds", elapsed.as_secs_f64());
        report.pass_seconds += elapsed.as_secs_f64();
        match result {
            Ok(mut intervals) => {
                let was_half_open = matches!(self.breaker.state(), BreakerState::HalfOpen);
                self.breaker.on_success();
                if was_half_open {
                    breaker_transition("closed");
                }
                // find_anomalies returns sorted intervals; re-sort
                // defensively so emission order (and therefore seq
                // assignment) never depends on a primitive's internals.
                intervals.sort_by_key(|iv| (iv.interval.start, iv.interval.end));
                let Some(buffer) = self.buffers.get_mut(signal) else {
                    return;
                };
                for iv in intervals {
                    if iv.interval.end <= buffer.emitted_until {
                        continue;
                    }
                    report.events.push(AnomalyEvent {
                        tenant: self.tenant.clone(),
                        signal: signal.to_string(),
                        seq: self.next_seq,
                        start: iv.interval.start,
                        end: iv.interval.end,
                        severity: iv.score,
                        pass,
                    });
                    self.next_seq += 1;
                    buffer.emitted_until = iv.interval.end;
                }
            }
            Err(failure) => {
                report.pass_failures += 1;
                if failure.kind == FailureKind::Timeout && !self.degraded {
                    // Overload path: swap to the cheap fallback before
                    // burning breaker strikes — the tenant keeps
                    // getting (coarser) detections.
                    self.degrade(report);
                    return;
                }
                match self.breaker.on_failure(
                    pass,
                    cfg.breaker_threshold,
                    cfg.breaker_cooldown,
                    cfg.quarantine_trips,
                ) {
                    BreakerEvent::Tripped => {
                        report.tripped += 1;
                        breaker_transition("open");
                    }
                    BreakerEvent::Quarantined => {
                        report.tripped += 1;
                        self.quarantined = true;
                        report.quarantined_now = true;
                        breaker_transition("open");
                        breaker_transition("quarantined");
                    }
                    BreakerEvent::Counted => {}
                }
            }
        }
    }

    // ---- checkpoint (de)serialization ---------------------------------

    /// Encode the session as a checkpoint document.
    pub fn to_doc(&self) -> Doc {
        let (state, trips) = self.breaker.parts();
        let (label, consecutive, until) = match state {
            BreakerState::Closed { consecutive_failures } => {
                ("closed", consecutive_failures as i64, 0i64)
            }
            BreakerState::Open { until_pass } => ("open", 0, until_pass as i64),
            BreakerState::HalfOpen => ("half_open", 0, 0),
        };
        let signals: Vec<Doc> = self
            .buffers
            .iter()
            .map(|(name, b)| {
                Doc::obj()
                    .with("signal", name.as_str())
                    .with("ingested", b.ingested as i64)
                    .with("emitted_until", b.emitted_until)
                    .with("timestamps", Doc::from(b.timestamps.clone()))
                    .with("values", Doc::from(b.values.clone()))
            })
            .collect();
        Doc::obj()
            .with("tenant", self.tenant.as_str())
            .with("pass_counter", self.pass_counter as i64)
            .with("next_seq", self.next_seq as i64)
            .with("degraded", self.degraded)
            .with("quarantined", self.quarantined)
            .with("breaker_state", label)
            .with("breaker_consecutive", consecutive)
            .with("breaker_until_pass", until)
            .with("breaker_trips", trips as i64)
            .with("signals", Doc::Arr(signals))
    }

    /// Decode a checkpoint document written by [`TenantSession::to_doc`].
    pub fn from_doc(doc: &Doc) -> Result<TenantSession> {
        let str_field = |d: &Doc, k: &str| -> Result<String> {
            d.get(k)
                .and_then(Doc::as_str)
                .map(str::to_string)
                .ok_or_else(|| ServeError::Checkpoint(format!("missing string field '{k}'")))
        };
        let i64_field = |d: &Doc, k: &str| -> Result<i64> {
            d.get(k)
                .and_then(Doc::as_i64)
                .ok_or_else(|| ServeError::Checkpoint(format!("missing int field '{k}'")))
        };
        let bool_field = |d: &Doc, k: &str| -> Result<bool> {
            d.get(k)
                .and_then(Doc::as_bool)
                .ok_or_else(|| ServeError::Checkpoint(format!("missing bool field '{k}'")))
        };
        let state = match str_field(doc, "breaker_state")?.as_str() {
            "closed" => BreakerState::Closed {
                consecutive_failures: i64_field(doc, "breaker_consecutive")?.max(0) as u32,
            },
            "open" => BreakerState::Open {
                until_pass: i64_field(doc, "breaker_until_pass")?.max(0) as u64,
            },
            "half_open" => BreakerState::HalfOpen,
            other => {
                return Err(ServeError::Checkpoint(format!("unknown breaker state '{other}'")))
            }
        };
        let mut buffers = BTreeMap::new();
        let signals = doc
            .get("signals")
            .and_then(Doc::as_arr)
            .ok_or_else(|| ServeError::Checkpoint("missing 'signals' array".to_string()))?;
        for entry in signals {
            let name = str_field(entry, "signal")?;
            let timestamps: Vec<i64> = entry
                .get("timestamps")
                .and_then(Doc::as_arr)
                .ok_or_else(|| ServeError::Checkpoint("missing 'timestamps'".to_string()))?
                .iter()
                .filter_map(Doc::as_i64)
                .collect();
            let values: Vec<f64> = entry
                .get("values")
                .and_then(Doc::as_arr)
                .ok_or_else(|| ServeError::Checkpoint("missing 'values'".to_string()))?
                .iter()
                .filter_map(Doc::as_f64)
                .collect();
            if timestamps.len() != values.len() {
                return Err(ServeError::Checkpoint(format!(
                    "signal '{name}': {} timestamps vs {} values",
                    timestamps.len(),
                    values.len()
                )));
            }
            buffers.insert(
                name,
                SignalBuffer {
                    timestamps,
                    values,
                    ingested: i64_field(entry, "ingested")?.max(0) as u64,
                    emitted_until: i64_field(entry, "emitted_until")?,
                },
            );
        }
        Ok(TenantSession {
            tenant: str_field(doc, "tenant")?,
            pass_counter: i64_field(doc, "pass_counter")?.max(0) as u64,
            next_seq: i64_field(doc, "next_seq")?.max(0) as u64,
            degraded: bool_field(doc, "degraded")?,
            quarantined: bool_field(doc, "quarantined")?,
            breaker: Breaker::from_parts(state, i64_field(doc, "breaker_trips")?.max(0) as u32),
            buffers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_pipeline::template::StepSpec;
    use sintel_primitives::HyperValue;

    /// The cheapest end-to-end detector: spectral residual scoring plus
    /// a fixed threshold, no training state.
    fn cheap_template() -> Template {
        Template {
            name: "serve_test".into(),
            steps: vec![
                StepSpec::plain("azure_anomaly_service"),
                StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
            ],
        }
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            window: 128,
            hop: 32,
            min_points: 32,
            ..ServeConfig::for_tests()
        }
    }

    fn feed(session: &mut TenantSession, cfg: &ServeConfig, n: usize) -> PassReport {
        let template = cheap_template();
        let mut report = PassReport::default();
        for t in 0..n {
            let value = (t as f64 / 8.0).sin() + if t == 70 { 6.0 } else { 0.0 };
            let ev = IngestEvent::new("acme", "cpu", t as i64, value);
            session.absorb(&ev, &template, cfg, &mut report);
        }
        report
    }

    #[test]
    fn passes_fire_at_hop_boundaries_and_emit_once() {
        let cfg = cfg();
        let mut session = TenantSession::new("acme");
        let report = feed(&mut session, &cfg, 128);
        // 128 samples / hop 32 => 4 scheduled passes.
        assert_eq!(session.pass_counter(), 4);
        assert_eq!(report.passes_run, 4);
        assert_eq!(report.absorbed, 128);
        assert!(!report.events.is_empty(), "spike at t=70 must be detected");
        // Every event is emitted exactly once: seq is dense and the
        // watermark advances monotonically.
        for (i, ev) in report.events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
        }
        let mut ends: Vec<i64> = report.events.iter().map(|e| e.end).collect();
        let sorted = ends.clone();
        ends.sort_unstable();
        assert_eq!(ends, sorted, "watermark must advance monotonically");
    }

    #[test]
    fn stale_timestamps_are_idempotent() {
        let cfg = cfg();
        let mut session = TenantSession::new("acme");
        feed(&mut session, &cfg, 64);
        let snapshot = session.clone();
        // Replaying the same 64 events changes nothing at all.
        let report = feed(&mut session, &cfg, 64);
        assert_eq!(report.absorbed, 0);
        assert_eq!(report.stale_dropped, 64);
        assert!(report.events.is_empty());
        assert_eq!(session, snapshot);
    }

    #[test]
    fn window_slides_and_bounds_memory() {
        let cfg = ServeConfig { window: 40, hop: 16, min_points: 16, ..ServeConfig::for_tests() };
        let mut session = TenantSession::new("acme");
        let template = cheap_template();
        let mut report = PassReport::default();
        for t in 0..400 {
            let ev = IngestEvent::new("acme", "cpu", t, (t as f64 / 8.0).sin());
            session.absorb(&ev, &template, &cfg, &mut report);
        }
        let buffer = session.buffer("cpu").expect("buffer exists");
        assert_eq!(buffer.len(), 40, "buffer must slide, not grow");
        assert_eq!(buffer.last_timestamp(), Some(399));
    }

    #[test]
    fn checkpoint_round_trips_bitwise() {
        let cfg = cfg();
        let mut session = TenantSession::new("acme");
        feed(&mut session, &cfg, 100);
        // Also exercise non-default flags.
        let mut report = PassReport::default();
        session.degrade(&mut report);
        assert!(report.degraded_now);
        let doc = session.to_doc();
        let restored = TenantSession::from_doc(&doc).expect("decode");
        assert_eq!(restored, session);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        assert!(TenantSession::from_doc(&Doc::obj()).is_err());
        let half = Doc::obj().with("tenant", "t").with("pass_counter", 1i64);
        assert!(TenantSession::from_doc(&half).is_err());
    }

    #[test]
    fn recovered_session_continues_identically() {
        let cfg = cfg();
        // Uninterrupted run over 256 events.
        let mut full = TenantSession::new("acme");
        let full_report = feed(&mut full, &cfg, 256);

        // Interrupted at 100 events: checkpoint, restore, then replay
        // the whole stream (at-least-once) — absorbed idempotently.
        let mut first = TenantSession::new("acme");
        let early = feed(&mut first, &cfg, 100);
        let mut resumed =
            TenantSession::from_doc(&first.to_doc()).expect("decode checkpoint");
        let late = feed(&mut resumed, &cfg, 256);

        assert_eq!(resumed, full, "recovered session state must converge");
        let mut combined = early.events;
        combined.extend(late.events);
        assert_eq!(combined, full_report.events, "emission sequence must be identical");
    }
}

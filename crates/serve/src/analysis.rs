//! Whole-deployment static analysis.
//!
//! [`analyze_deployment`] checks a [`ServeConfig`] plus its tenant
//! roster *before* the engine spins up, through the same coded-report
//! machinery `sintel-analyze` uses for templates. On top of re-running
//! per-template analysis for every tenant (with the serve window as the
//! input-length bound, so SA007 statically-empty-output findings fire),
//! it emits the deployment-level codes:
//!
//! * **SA008** — the fallback template is not strictly cheaper than a
//!   tenant's primary under the cost model (Error when costlier, Warn
//!   when merely equal: degradation then sheds accuracy for nothing,
//!   but does not make things worse);
//! * **SA010** — a config field outside its valid domain (the checks
//!   formerly inlined in `ServeConfig::validate`);
//! * **SA011** — reserved (`_self`) or duplicate tenant name;
//! * **SA012** — the fallback itself cannot run inside the serve
//!   window (or fails static analysis): degradation would trade a
//!   working pipeline for a statically dead one;
//! * **SA013** — load shedding misconfigured: fires always
//!   (`high_water == 0` with sheddable tenants) or provably never
//!   (a finite high-water mark no backlog or roster can reach);
//! * **SA014** — an open circuit breaker can never half-open again
//!   (`breaker_cooldown` overflows the pass clock).
//!
//! [`ServeEngine::open`](crate::ServeEngine::open) refuses deployments
//! whose report has errors and logs each warning through `sintel-obs`,
//! so a misconfigured deployment dies with a readable rustc-style
//! report instead of shedding or quarantining mysteriously at 3am.

use sintel_analyze::{Code, Diagnostic, Report};

use crate::engine::{ServeConfig, TenantSpec};
use crate::selfmon::SELF_TENANT;

/// Pseudo-primitive name deployment-level diagnostics anchor to.
const CONFIG_STEP: &str = "serve_config";

/// Statically analyse a deployment: the serve configuration plus the
/// tenant roster it would run. Pure — builds no engine state.
pub fn analyze_deployment(cfg: &ServeConfig, specs: &[TenantSpec]) -> Report {
    let mut report = Report::new("deployment");
    let config_ok = check_config(cfg, &mut report);
    check_tenant_names(specs, &mut report);
    check_breaker(cfg, &mut report);
    if config_ok {
        check_shedding(cfg, specs, &mut report);
        check_fallback(cfg, &mut report);
        check_tenants(cfg, specs, &mut report);
    }
    report
}

/// SA010: domain checks on the raw config fields. Returns whether the
/// window geometry is sound enough for the downstream checks to make
/// sense.
fn check_config(cfg: &ServeConfig, report: &mut Report) -> bool {
    let mut sound = true;
    let invalid = |report: &mut Report, message: String, hint: &str| {
        report.push(Diagnostic::error(
            Code::ServeConfigInvalid,
            0,
            CONFIG_STEP,
            message,
            hint,
        ));
    };
    if cfg.window == 0 {
        invalid(report, "window must be > 0".into(), "set window to the sliding-window size");
        sound = false;
    }
    if cfg.min_points == 0 || cfg.min_points > cfg.window {
        invalid(
            report,
            format!("min_points must be in 1..=window ({} vs {})", cfg.min_points, cfg.window),
            "passes fire on min_points..=window buffered samples",
        );
        sound = false;
    }
    if cfg.hop == 0 {
        invalid(report, "hop must be > 0".into(), "a pass fires every hop-th absorbed sample");
    }
    if cfg.queue_capacity == 0 {
        invalid(
            report,
            "queue_capacity must be > 0".into(),
            "a zero-capacity queue rejects every event",
        );
    }
    if cfg.breaker_threshold == 0 {
        invalid(
            report,
            "breaker_threshold must be > 0".into(),
            "the breaker trips after this many consecutive failures",
        );
    }
    if cfg.quarantine_trips == 0 {
        invalid(
            report,
            "quarantine_trips must be > 0".into(),
            "tenants quarantine after this many breaker trips",
        );
    }
    sound
}

/// SA011: the reserved `_self` name and duplicates.
fn check_tenant_names(specs: &[TenantSpec], report: &mut Report) {
    let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for spec in specs {
        if spec.name == SELF_TENANT {
            report.push(Diagnostic::error(
                Code::TenantCollision,
                0,
                &spec.name,
                format!("tenant name '{SELF_TENANT}' is reserved for self-monitoring"),
                "rename the tenant; the engine runs its own streams under '_self'",
            ));
        } else if !seen.insert(&spec.name) {
            report.push(Diagnostic::error(
                Code::TenantCollision,
                0,
                &spec.name,
                format!("duplicate tenant '{}'", spec.name),
                "tenant names key sessions and checkpoints; make them unique",
            ));
        }
    }
}

/// SA014: an open breaker half-opens at `pass + cooldown`; a cooldown at
/// the pass-clock ceiling can never be reached.
fn check_breaker(cfg: &ServeConfig, report: &mut Report) {
    if cfg.breaker_cooldown == u64::MAX {
        report.push(Diagnostic::error(
            Code::BreakerConfig,
            0,
            CONFIG_STEP,
            format!(
                "breaker_cooldown {} overflows the pass clock; an open breaker can never \
                 half-open",
                cfg.breaker_cooldown
            ),
            "pick a cooldown of a few passes (the default is 8)",
        ));
    }
}

/// SA013: load shedding must be *reachable but not constant*.
fn check_shedding(cfg: &ServeConfig, specs: &[TenantSpec], report: &mut Report) {
    let sheddable = specs.iter().any(|s| s.priority < cfg.priority_floor);
    if cfg.high_water == 0 && sheddable {
        report.push(Diagnostic::error(
            Code::SheddingConfig,
            0,
            CONFIG_STEP,
            "high_water is 0: every event from tenants below the priority floor is shed \
             unconditionally",
            "raise high_water above the backlog you can tolerate",
        ));
        return;
    }
    // A finite high-water mark that provably can never fire is inert
    // protection: either nothing is sheddable, or the bounded queues
    // cannot accumulate that much backlog in the first place.
    if cfg.high_water == usize::MAX || specs.is_empty() {
        return;
    }
    let max_backlog = specs.len().saturating_mul(cfg.queue_capacity);
    if !sheddable {
        report.push(Diagnostic::warn(
            Code::SheddingConfig,
            0,
            CONFIG_STEP,
            format!(
                "no tenant's priority is below the floor ({}); load shedding can never fire",
                cfg.priority_floor
            ),
            "register at least one sheddable tenant or set priority_floor to 0",
        ));
    } else if max_backlog < cfg.high_water {
        report.push(Diagnostic::warn(
            Code::SheddingConfig,
            0,
            CONFIG_STEP,
            format!(
                "high_water {} exceeds the maximum possible backlog {} ({} tenants x \
                 queue_capacity {}); load shedding can never fire",
                cfg.high_water,
                max_backlog,
                specs.len(),
                cfg.queue_capacity
            ),
            "lower high_water or raise queue_capacity",
        ));
    }
}

/// SA012: the fallback must itself survive static analysis and fit the
/// serve window — degradation that swaps a working pipeline for a
/// statically dead one makes an overload strictly worse.
fn check_fallback(cfg: &ServeConfig, report: &mut Report) {
    let fallback = &cfg.fallback;
    let inner = fallback.analyze_for_input_len(&[], Some(cfg.window));
    if inner.has_errors() {
        report.push(Diagnostic::error(
            Code::FallbackIncompatible,
            0,
            &fallback.name,
            format!(
                "fallback template '{}' fails static analysis ({})",
                fallback.name,
                inner.summary()
            ),
            "fix the fallback template; run per-template analysis for details",
        ));
        return;
    }
    if let Some(required) = fallback.required_input_len() {
        if required > cfg.window {
            report.push(Diagnostic::error(
                Code::FallbackIncompatible,
                0,
                &fallback.name,
                format!(
                    "fallback '{}' requires at least {} input samples but the serve window \
                     holds at most {}",
                    fallback.name, required, cfg.window
                ),
                "shrink the fallback's window requirements or enlarge the serve window",
            ));
        } else if required > cfg.min_points {
            report.push(Diagnostic::warn(
                Code::FallbackIncompatible,
                0,
                &fallback.name,
                format!(
                    "fallback '{}' requires at least {} input samples but passes may fire \
                     from min_points {}; early degraded passes will produce nothing",
                    fallback.name, required, cfg.min_points
                ),
                "raise min_points to the fallback's requirement",
            ));
        }
    }
}

/// Per-tenant checks: merge each tenant template's own diagnostics
/// (analysed under the serve window, so SA007 fires for statically-dead
/// configurations) and compare its cost against the fallback (SA008).
fn check_tenants(cfg: &ServeConfig, specs: &[TenantSpec], report: &mut Report) {
    let fallback_cost = cfg.fallback.estimated_cost(cfg.window);
    for spec in specs {
        // Fault-injection templates are chaos-test instruments: their
        // declared hyper domains deliberately diverge from what the
        // runtime accepts (e.g. faulty_flaky's open-namespace "key"),
        // so static per-template analysis would reject them for doing
        // exactly their job. Skip them, like the cost model does.
        if spec.template.steps.iter().any(|s| s.primitive.starts_with("faulty_")) {
            continue;
        }
        let inner = spec.template.analyze_for_input_len(&[], Some(cfg.window));
        for d in inner.diagnostics {
            let mut merged = d;
            merged.message =
                format!("tenant '{}': {}", spec.name, merged.message);
            report.push(merged);
        }
        // The degradation invariant: falling back must shed cost. Both
        // estimates are None for fault-injection stubs and unknown
        // primitives; the comparison is skipped rather than guessed.
        let (Some(fallback), Some(primary)) =
            (fallback_cost, spec.template.estimated_cost(cfg.window))
        else {
            continue;
        };
        if fallback.flops > primary.flops {
            report.push(Diagnostic::error(
                Code::FallbackCost,
                0,
                &spec.name,
                format!(
                    "fallback '{}' is costlier than tenant '{}' primary '{}' ({:.0} vs {:.0} \
                     estimated flops): degradation would make overload worse",
                    cfg.fallback.name, spec.name, spec.template.name, fallback.flops,
                    primary.flops
                ),
                "use a cheaper fallback (or the primary itself is already minimal)",
            ));
        } else if fallback.flops == primary.flops {
            report.push(Diagnostic::warn(
                Code::FallbackCost,
                0,
                &spec.name,
                format!(
                    "fallback '{}' costs the same as tenant '{}' primary '{}' ({:.0} estimated \
                     flops): degradation sheds accuracy without shedding load",
                    cfg.fallback.name, spec.name, spec.template.name, fallback.flops
                ),
                "degradation only helps when the fallback is strictly cheaper",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_with_no_tenants_has_no_errors() {
        let report = analyze_deployment(&ServeConfig::default(), &[]);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn analysis_is_pure() {
        let cfg = ServeConfig::default();
        let specs = vec![TenantSpec::new(
            "acme",
            0,
            crate::engine::fallback_template(),
        )];
        let a = analyze_deployment(&cfg, &specs).render();
        let b = analyze_deployment(&cfg, &specs).render();
        assert_eq!(a, b);
    }
}

//! The multi-tenant serving engine: admission, deterministic parallel
//! pass execution, and group-committed checkpoints.
//!
//! The engine is single-writer: one owner calls [`ServeEngine::offer`]
//! to admit events and [`ServeEngine::tick`] to process them. A tick
//! drains every tenant's queue, runs the drained events through the
//! tenants' sessions in parallel (tenants are independent, so
//! [`sintel_common::par_map`] over them cannot change any output), and
//! then commits *one* [`sintel_store::Database::batch`] record holding
//! every updated session checkpoint, every newly detected anomaly event
//! and the advanced tick counter. Crash anywhere before that commit:
//! the store still holds the previous consistent cut, and replaying the
//! stream is safe because session buffers absorb stale timestamps
//! idempotently. Crash after the commit but before the caller sees the
//! returned events: the events are in the store with dense per-tenant
//! `seq` numbers, so a consumer resuming from
//! [`ServeEngine::committed_events`] neither loses nor duplicates them.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sintel_pipeline::policy::RunPolicy;
use sintel_pipeline::template::StepSpec;
use sintel_pipeline::Template;
use sintel_primitives::HyperValue;
use sintel_store::schema::collections;
use sintel_store::{Doc, Filter, SintelDb};

use crate::event::{Admission, AnomalyEvent, IngestEvent};
use crate::queue::TenantQueue;
use crate::selfmon::{SelfMonitor, SELF_TENANT};
use crate::session::{PassReport, TenantSession};
use crate::slo::{
    self, SharedStatus, StatusSnapshot, TenantSlo, TenantTickStats, TickWideEvent,
};
use crate::{Result, ServeError};

/// The cheap fallback pipeline used under graceful degradation:
/// spectral-residual scoring plus a fixed threshold — stateless, no
/// training, one FFT per pass.
pub fn fallback_template() -> Template {
    Template {
        name: "serve_fallback".to_string(),
        steps: vec![
            StepSpec::plain("azure_anomaly_service"),
            StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(3.0))]),
        ],
    }
}

/// Tuning knobs of the serving tier.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Sliding-window size (samples) kept per signal.
    pub window: usize,
    /// A detection pass fires every `hop`-th sample absorbed into a
    /// signal (the event-count clock that keeps emissions independent
    /// of tick batching).
    pub hop: u64,
    /// Minimum buffered samples before the first pass may fire.
    pub min_points: usize,
    /// Bound of each tenant's ingest queue (backpressure past it).
    pub queue_capacity: usize,
    /// Aggregate backlog (all queues) past which low-priority tenants
    /// are load-shed.
    pub high_water: usize,
    /// Tenants with `priority <` this floor are shed once the backlog
    /// passes [`ServeConfig::high_water`].
    pub priority_floor: u8,
    /// Draining at least this many events for one tenant in a single
    /// tick degrades it to the fallback pipeline (it cannot keep up
    /// with its own configured template).
    pub degrade_depth: usize,
    /// Consecutive pass failures that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// Passes an open breaker skips before allowing a half-open probe.
    pub breaker_cooldown: u64,
    /// Breaker trips that permanently quarantine the tenant.
    pub quarantine_trips: u32,
    /// Run policy (timeout / retries / backoff) for each detection pass.
    pub policy: RunPolicy,
    /// Pipeline used once a tenant is degraded.
    pub fallback: Template,
    /// Feed the engine's own per-tick operational streams through a
    /// fallback-template detection pass under the reserved `_self`
    /// tenant (see [`crate::selfmon`]).
    pub self_monitor: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            window: 512,
            hop: 64,
            min_points: 128,
            queue_capacity: 1024,
            high_water: 8192,
            priority_floor: 1,
            degrade_depth: 512,
            breaker_threshold: 3,
            breaker_cooldown: 8,
            quarantine_trips: 2,
            policy: RunPolicy::default(),
            fallback: fallback_template(),
            self_monitor: true,
        }
    }
}

impl ServeConfig {
    /// A small, non-interfering config for tests and examples: modest
    /// windows, effectively unlimited queues/high-water (so nothing is
    /// shed or degraded unless a test asks for it), single-attempt
    /// passes with a generous timeout.
    pub fn for_tests() -> Self {
        Self {
            window: 128,
            hop: 32,
            min_points: 32,
            queue_capacity: 1 << 20,
            high_water: usize::MAX,
            priority_floor: 0,
            degrade_depth: usize::MAX,
            breaker_threshold: 3,
            breaker_cooldown: 4,
            quarantine_trips: 2,
            policy: RunPolicy::single_attempt(Duration::from_secs(30)),
            fallback: fallback_template(),
            self_monitor: true,
        }
    }

    /// Validate invariants the engine depends on. Delegates to
    /// [`crate::analysis::analyze_deployment`] over an empty tenant
    /// roster, so every finding carries a coded (`SA0xx`) rustc-style
    /// rendering instead of an ad-hoc message.
    pub fn validate(&self) -> Result<()> {
        let report = crate::analysis::analyze_deployment(self, &[]);
        if report.has_errors() {
            return Err(ServeError::Config(report.render()));
        }
        Ok(())
    }
}

/// A registered tenant: name, load-shedding priority and pipeline.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Unique tenant name.
    pub name: String,
    /// Load-shedding priority (higher survives overload longer).
    pub priority: u8,
    /// The tenant's configured detection pipeline.
    pub template: Template,
}

impl TenantSpec {
    /// Construct a spec.
    pub fn new(name: &str, priority: u8, template: Template) -> Self {
        Self { name: name.to_string(), priority, template }
    }
}

/// Per-tenant counters, accumulated across the engine's lifetime
/// (not persisted; a recovered engine starts counting afresh, but
/// `degraded`/`quarantined` reflect the recovered session state).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Events admitted into the queue.
    pub accepted: u64,
    /// Events refused with [`Admission::Retry`] (queue full).
    pub retried: u64,
    /// Events dropped with [`Admission::Shed`].
    pub shed: u64,
    /// Samples absorbed into session buffers.
    pub absorbed: u64,
    /// Stale/duplicate samples dropped by idempotent replay.
    pub stale_dropped: u64,
    /// Committed anomaly events emitted.
    pub emitted: u64,
    /// Detection passes attempted.
    pub passes_run: u64,
    /// Scheduled passes skipped (breaker open / quarantined).
    pub passes_skipped: u64,
    /// Attempted passes that failed their run policy.
    pub pass_failures: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Currently running the fallback pipeline.
    pub degraded: bool,
    /// Permanently parked.
    pub quarantined: bool,
}

/// Engine-wide statistics snapshot.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Ticks processed (including recovered history).
    pub ticks: u64,
    /// Per-tenant counters, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
}

struct TenantRuntime {
    spec: TenantSpec,
    queue: TenantQueue,
    session: Option<TenantSession>,
    doc_id: Option<u64>,
    stats: TenantStats,
    /// Snapshot of `stats` at the end of the previous tick; the wide
    /// event reports admission counters as deltas against it.
    prev_stats: TenantStats,
    pending_since: Option<Instant>,
}

/// The multi-tenant streaming engine (see module docs).
pub struct ServeEngine {
    cfg: ServeConfig,
    db: SintelDb,
    tenants: BTreeMap<String, TenantRuntime>,
    ticks: u64,
    meta_id: u64,
    self_monitor: Option<SelfMonitor>,
    /// Publish handle for the HTTP status server, once enabled.
    status: Option<SharedStatus>,
    /// The last committed tick's wide event.
    last_wide: Option<TickWideEvent>,
    /// Commit duration of the previous tick's checkpoint batch — a
    /// tick's own commit time is unknowable until after its wide event
    /// is inside the batch, so each wide event carries its
    /// predecessor's.
    last_checkpoint_seconds: f64,
    /// Flushes any configured trace sink when the engine is dropped —
    /// including during panic unwinding — so the span tail survives a
    /// crash of the serving process.
    _trace_flush: sintel_obs::TraceFlushGuard,
}

impl ServeEngine {
    /// Open an engine over `db` with the given tenants. Doubles as
    /// crash recovery: tenants with a persisted session checkpoint
    /// resume from it (pass counters, emission sequence, breaker state
    /// and buffered windows intact); the rest start fresh.
    pub fn open(db: SintelDb, cfg: ServeConfig, specs: Vec<TenantSpec>) -> Result<Self> {
        // Whole-deployment static analysis gates the engine: a report
        // with errors (bad config domain, tenant collision, statically
        // dead fallback, cost-inverted degradation…) refuses to open;
        // warnings are logged and tolerated.
        let report = crate::analysis::analyze_deployment(&cfg, &specs);
        for warning in report.warnings() {
            sintel_obs::warn!(
                "sintel_serve::analysis",
                warning.message.clone(),
                code = warning.code.as_str(),
                hint = warning.hint.as_str(),
            );
        }
        if report.has_errors() {
            return Err(ServeError::Config(report.render()));
        }
        let meta = db.raw().find_one(collections::SERVE_META, &Filter::eq("kind", "engine"));
        let (meta_id, ticks) = match meta {
            Some(doc) => (
                doc.get("_id").and_then(Doc::as_i64).unwrap_or(0).max(0) as u64,
                doc.get("ticks").and_then(Doc::as_i64).unwrap_or(0).max(0) as u64,
            ),
            None => {
                let init = Doc::obj().with("kind", "engine").with("ticks", 0u64);
                (db.raw().insert(collections::SERVE_META, init), 0)
            }
        };
        let mut tenants = BTreeMap::new();
        for spec in specs {
            let (session, doc_id) = match db.serve_session(&spec.name) {
                Some(doc) => {
                    let id = doc.get("_id").and_then(Doc::as_i64).map(|v| v.max(0) as u64);
                    (TenantSession::from_doc(&doc)?, id)
                }
                None => (TenantSession::new(&spec.name), None),
            };
            let stats = TenantStats {
                degraded: session.is_degraded(),
                quarantined: session.is_quarantined(),
                ..TenantStats::default()
            };
            let queue = TenantQueue::new(cfg.queue_capacity);
            tenants.insert(
                spec.name.clone(),
                TenantRuntime {
                    spec,
                    queue,
                    session: Some(session),
                    doc_id,
                    prev_stats: stats.clone(),
                    stats,
                    pending_since: None,
                },
            );
        }
        let self_monitor =
            if cfg.self_monitor { Some(SelfMonitor::open(&db, &cfg, ticks)?) } else { None };
        Ok(Self {
            cfg,
            db,
            tenants,
            ticks,
            meta_id,
            self_monitor,
            status: None,
            last_wide: None,
            last_checkpoint_seconds: 0.0,
            _trace_flush: sintel_obs::TraceFlushGuard::new(),
        })
    }

    /// Offer one event for admission. The admission protocol:
    ///
    /// * [`Admission::Accepted`] — queued for the next tick;
    /// * [`Admission::Retry`] — the tenant's queue is full; run a tick
    ///   and re-offer (the caller keeps the event);
    /// * [`Admission::Shed`] — dropped: the tenant is quarantined, or
    ///   the aggregate backlog is past the high-water mark and this
    ///   tenant's priority is below the floor.
    pub fn offer(&mut self, event: &IngestEvent) -> Result<Admission> {
        let backlog = self.aggregate_depth();
        let high_water = self.cfg.high_water;
        let floor = self.cfg.priority_floor;
        let Some(runtime) = self.tenants.get_mut(&event.tenant) else {
            return Err(ServeError::UnknownTenant(event.tenant.clone()));
        };
        if runtime.stats.quarantined {
            runtime.stats.shed += 1;
            sintel_obs::counter_add("sintel_serve_shed_total", 1);
            return Ok(Admission::Shed);
        }
        if backlog >= high_water && runtime.spec.priority < floor {
            runtime.stats.shed += 1;
            sintel_obs::counter_add("sintel_serve_shed_total", 1);
            return Ok(Admission::Shed);
        }
        if !runtime.queue.try_push(event.clone()) {
            runtime.stats.retried += 1;
            sintel_obs::counter_add("sintel_serve_retry_total", 1);
            return Ok(Admission::Retry { after_ticks: 1 });
        }
        runtime.stats.accepted += 1;
        if runtime.pending_since.is_none() {
            runtime.pending_since = Some(Instant::now());
        }
        sintel_obs::counter_add("sintel_serve_accepted_total", 1);
        Ok(Admission::Accepted)
    }

    /// Process every queued event: drain all tenant queues, run the
    /// sessions in parallel, group-commit the checkpoint cut, then
    /// return the newly committed anomaly events (tenant order, then
    /// emission order).
    pub fn tick(&mut self) -> Result<Vec<AnomalyEvent>> {
        #[cfg(feature = "faulty")]
        if crate::fault::take(crate::fault::CrashPoint::BeforeCheckpoint) {
            return Err(ServeError::Injected(
                crate::fault::CrashPoint::BeforeCheckpoint.label(),
            ));
        }
        let tick_span = sintel_obs::span("serve.tick");

        struct WorkItem {
            session: TenantSession,
            events: Vec<IngestEvent>,
            template: Template,
            force_degrade: bool,
        }

        let names: Vec<String> = self.tenants.keys().cloned().collect();
        let mut slots: Vec<Mutex<Option<WorkItem>>> = Vec::with_capacity(names.len());
        let mut drained: Vec<u64> = Vec::with_capacity(names.len());
        for name in &names {
            let Some(runtime) = self.tenants.get_mut(name) else {
                slots.push(Mutex::new(None));
                drained.push(0);
                continue;
            };
            let events = runtime.queue.drain_all();
            // Queue depth at its per-tick peak (just before the drain).
            // Gauged here, once per tick, rather than on every offer:
            // the offer path must stay allocation-free.
            sintel_obs::gauge_set(
                &sintel_obs::labeled(
                    "sintel_serve_queue_depth",
                    &[("tenant", name.as_str())],
                ),
                events.len() as f64,
            );
            let session = runtime.session.take().unwrap_or_else(|| TenantSession::new(name));
            let force_degrade = events.len() >= self.cfg.degrade_depth;
            drained.push(events.len() as u64);
            slots.push(Mutex::new(Some(WorkItem {
                session,
                events,
                template: runtime.spec.template.clone(),
                force_degrade,
            })));
        }

        // Tenants are independent: each worker owns one tenant's session
        // and events, so parallelism cannot change any tenant's output.
        let cfg = &self.cfg;
        let outcomes: Vec<Option<(TenantSession, PassReport)>> =
            sintel_common::par_map(slots.len(), |i| {
                let item = {
                    let mut guard = slots[i].lock().unwrap_or_else(|e| e.into_inner());
                    guard.take()
                }?;
                let WorkItem { mut session, events, template, force_degrade } = item;
                let mut report = PassReport::default();
                if force_degrade {
                    session.degrade(&mut report);
                }
                for event in &events {
                    session.absorb(event, &template, cfg, &mut report);
                }
                Some((session, report))
            });

        // One group-committed cut: every checkpoint, every event, the
        // tick's wide event and the tick counter land (or are lost
        // together) atomically.
        self.ticks += 1;
        let mut emitted: Vec<AnomalyEvent> = Vec::new();
        let mut wide = TickWideEvent {
            tick: self.ticks,
            checkpoint_seconds: self.last_checkpoint_seconds,
            ..TickWideEvent::default()
        };
        let scope = self.db.batch();
        for (i, (name, outcome)) in names.iter().zip(outcomes).enumerate() {
            let Some((session, report)) = outcome else { continue };
            let Some(runtime) = self.tenants.get_mut(name) else { continue };
            let doc_id = self.db.upsert_serve_session(runtime.doc_id, session.to_doc())?;
            runtime.doc_id = Some(doc_id);
            for ev in &report.events {
                self.db.add_serve_event(
                    &ev.tenant, &ev.signal, ev.seq, ev.start, ev.end, ev.severity, ev.pass,
                );
            }
            let stats = &mut runtime.stats;
            stats.absorbed += report.absorbed;
            stats.stale_dropped += report.stale_dropped;
            stats.passes_run += report.passes_run;
            stats.passes_skipped += report.passes_skipped;
            stats.pass_failures += report.pass_failures;
            stats.breaker_trips += report.tripped;
            stats.emitted += report.events.len() as u64;
            stats.degraded = session.is_degraded();
            stats.quarantined = session.is_quarantined();
            let tenant_tick = TenantTickStats {
                tenant: name.clone(),
                accepted: stats.accepted - runtime.prev_stats.accepted,
                retried: stats.retried - runtime.prev_stats.retried,
                shed: stats.shed - runtime.prev_stats.shed,
                drained: drained.get(i).copied().unwrap_or(0),
                absorbed: report.absorbed,
                stale_dropped: report.stale_dropped,
                emitted: report.events.len() as u64,
                passes_run: report.passes_run,
                passes_skipped: report.passes_skipped,
                pass_failures: report.pass_failures,
                pass_seconds: report.pass_seconds,
                breaker_state: session.breaker().state().label().to_string(),
                breaker_trips: stats.breaker_trips,
                degraded: stats.degraded,
                quarantined: stats.quarantined,
            };
            runtime.prev_stats = stats.clone();
            wide.accepted += tenant_tick.accepted;
            wide.retried += tenant_tick.retried;
            wide.shed += tenant_tick.shed;
            wide.drained += tenant_tick.drained;
            wide.absorbed += tenant_tick.absorbed;
            wide.emitted += tenant_tick.emitted;
            wide.passes_run += tenant_tick.passes_run;
            wide.pass_failures += tenant_tick.pass_failures;
            wide.pass_seconds += tenant_tick.pass_seconds;
            wide.tenants.push(tenant_tick);
            if report.tripped > 0 {
                sintel_obs::counter_add("sintel_serve_breaker_trips_total", report.tripped);
            }
            if report.degraded_now {
                sintel_obs::counter_add("sintel_serve_degraded_total", 1);
            }
            if report.quarantined_now {
                sintel_obs::counter_add("sintel_serve_quarantined_total", 1);
            }
            if !report.events.is_empty() {
                sintel_obs::counter_add(
                    "sintel_serve_emitted_total",
                    report.events.len() as u64,
                );
                if let Some(since) = runtime.pending_since.take() {
                    sintel_obs::observe(
                        "sintel_serve_emit_latency_seconds",
                        since.elapsed().as_secs_f64(),
                    );
                }
            }
            runtime.session = Some(session);
            emitted.extend(report.events);
        }
        wide.backlog = self.aggregate_depth() as u64;

        // Self-monitoring: absorb this tick's operational measurements
        // (now final) through the `_self` session, committing its
        // checkpoint and any anomalies it raised in the same cut. Its
        // events are persisted, never returned.
        if let Some(monitor) = self.self_monitor.as_mut() {
            let report = monitor.observe_tick(self.ticks, &wide);
            let doc_id =
                self.db.upsert_serve_session(monitor.doc_id(), monitor.session().to_doc())?;
            monitor.set_doc_id(doc_id);
            for ev in &report.events {
                self.db.add_serve_event(
                    &ev.tenant, &ev.signal, ev.seq, ev.start, ev.end, ev.severity, ev.pass,
                );
            }
            wide.self_events = report.events.len() as u64;
        }
        self.db.add_serve_tick(wide.to_doc());

        let meta = Doc::obj().with("kind", "engine").with("ticks", self.ticks);
        self.db.raw().update(collections::SERVE_META, self.meta_id, meta)?;
        let commit_start = Instant::now();
        scope.commit()?;
        self.last_checkpoint_seconds = commit_start.elapsed().as_secs_f64();

        #[cfg(feature = "faulty")]
        if crate::fault::take(crate::fault::CrashPoint::BetweenCheckpointAndEmit) {
            return Err(ServeError::Injected(
                crate::fault::CrashPoint::BetweenCheckpointAndEmit.label(),
            ));
        }
        sintel_obs::counter_add("sintel_serve_ticks_total", 1);
        sintel_obs::observe("sintel_serve_checkpoint_seconds", self.last_checkpoint_seconds);
        if wide.self_events > 0 {
            sintel_obs::counter_add("sintel_serve_self_events_total", wide.self_events);
        }
        sintel_obs::rollup_add("sintel_serve_events_per_tick", wide.drained);
        sintel_obs::rollup_add("sintel_serve_sheds_per_tick", wide.shed);
        sintel_obs::rollup_add("sintel_serve_retries_per_tick", wide.retried);
        sintel_obs::rollup_add("sintel_serve_emits_per_tick", wide.emitted);
        sintel_obs::rollup_add("sintel_serve_pass_failures_per_tick", wide.pass_failures);
        sintel_obs::gauge_set("sintel_serve_backlog", self.aggregate_depth() as f64);
        let tick_elapsed = tick_span.close();
        sintel_obs::observe_duration("sintel_serve_tick_seconds", tick_elapsed);
        sintel_obs::rollup_observe(
            "sintel_serve_tick_window_seconds",
            tick_elapsed.as_secs_f64(),
        );
        sintel_obs::rollup_tick();
        self.last_wide = Some(wide);
        self.publish_status();
        Ok(emitted)
    }

    /// Every committed anomaly event for `tenant`, in emission (`seq`)
    /// order — the durable stream a consumer resumes from after a
    /// crash.
    pub fn committed_events(&self, tenant: &str) -> Vec<AnomalyEvent> {
        self.db.serve_events_for_tenant(tenant).iter().filter_map(decode_event).collect()
    }

    /// Total events queued across all tenants.
    pub fn aggregate_depth(&self) -> usize {
        self.tenants.values().map(|r| r.queue.len()).sum()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            ticks: self.ticks,
            tenants: self
                .tenants
                .iter()
                .map(|(name, r)| (name.clone(), r.stats.clone()))
                .collect(),
        }
    }

    /// Ticks processed so far (monotonic across recoveries).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Registered tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.keys().map(String::as_str).collect()
    }

    /// One tenant's live session (None for unknown tenants).
    pub fn session(&self, tenant: &str) -> Option<&TenantSession> {
        self.tenants.get(tenant).and_then(|r| r.session.as_ref())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The last committed tick's wide event, if any tick has run.
    pub fn last_wide_event(&self) -> Option<&TickWideEvent> {
        self.last_wide.as_ref()
    }

    /// The self-monitoring session, when enabled.
    pub fn self_session(&self) -> Option<&TenantSession> {
        self.self_monitor.as_ref().map(SelfMonitor::session)
    }

    /// Every committed `_self` anomaly the self-monitor raised on the
    /// engine's own operational streams, in emission order.
    pub fn self_events(&self) -> Vec<AnomalyEvent> {
        self.committed_events(SELF_TENANT)
    }

    /// Turn on status publishing and return the handle a
    /// [`crate::http::StatusServer`] reads from. The engine republishes
    /// an immutable snapshot after every tick; calling this again
    /// returns the same handle.
    pub fn enable_status(&mut self) -> SharedStatus {
        if self.status.is_none() {
            self.status = Some(slo::shared_status());
        }
        self.publish_status();
        // The line above guarantees the handle exists; clone it out.
        self.status.clone().unwrap_or_else(slo::shared_status)
    }

    /// Build the current status snapshot (cheap: counters and clones of
    /// small per-tenant summaries).
    pub fn status_snapshot(&self) -> StatusSnapshot {
        StatusSnapshot {
            ticks: self.ticks,
            backlog: self.aggregate_depth() as u64,
            tenants: self
                .tenants
                .values()
                .map(|runtime| TenantSlo {
                    tenant: runtime.spec.name.clone(),
                    priority: runtime.spec.priority,
                    queue_depth: runtime.queue.len() as u64,
                    stats: runtime.stats.clone(),
                    breaker_state: runtime
                        .session
                        .as_ref()
                        .map(|s| s.breaker().state().label())
                        .unwrap_or("closed")
                        .to_string(),
                })
                .collect(),
            last_tick: self.last_wide.clone(),
        }
    }

    fn publish_status(&self) {
        if let Some(shared) = &self.status {
            slo::publish(shared, self.status_snapshot());
        }
    }

    /// The underlying knowledge base.
    pub fn db(&self) -> &SintelDb {
        &self.db
    }

    /// Tear the engine down, returning the knowledge base — the
    /// in-memory crash simulation used by the recovery property tests
    /// (drop everything volatile, keep only what was committed).
    pub fn into_db(self) -> SintelDb {
        self.db
    }
}

fn decode_event(doc: &Doc) -> Option<AnomalyEvent> {
    Some(AnomalyEvent {
        tenant: doc.get("tenant")?.as_str()?.to_string(),
        signal: doc.get("signal")?.as_str()?.to_string(),
        seq: doc.get("seq")?.as_i64()?.max(0) as u64,
        start: doc.get("start_time")?.as_i64()?,
        end: doc.get("stop_time")?.as_i64()?,
        severity: doc.get("severity")?.as_f64()?,
        pass: doc.get("pass")?.as_i64()?.max(0) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cheap_template() -> Template {
        Template {
            name: "serve_test".into(),
            steps: vec![
                StepSpec::plain("azure_anomaly_service"),
                StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(2.0))]),
            ],
        }
    }

    fn value_at(t: i64) -> f64 {
        (t as f64 / 8.0).sin() + if t == 70 { 6.0 } else { 0.0 }
    }

    fn one_tenant_engine(cfg: ServeConfig) -> ServeEngine {
        ServeEngine::open(
            SintelDb::in_memory(),
            cfg,
            vec![TenantSpec::new("acme", 5, cheap_template())],
        )
        .expect("open")
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(ServeConfig { window: 0, ..ServeConfig::for_tests() }.validate().is_err());
        assert!(ServeConfig { hop: 0, ..ServeConfig::for_tests() }.validate().is_err());
        assert!(ServeConfig { min_points: 0, ..ServeConfig::for_tests() }.validate().is_err());
        assert!(ServeConfig { min_points: 200, window: 100, ..ServeConfig::for_tests() }
            .validate()
            .is_err());
        assert!(ServeConfig::for_tests().validate().is_ok());
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn unknown_tenant_is_an_error() {
        let mut engine = one_tenant_engine(ServeConfig::for_tests());
        let err = engine.offer(&IngestEvent::new("ghost", "cpu", 0, 0.0));
        assert!(matches!(err, Err(ServeError::UnknownTenant(t)) if t == "ghost"));
    }

    #[test]
    fn full_queue_pushes_back_and_drains_on_tick() {
        let cfg = ServeConfig { queue_capacity: 2, ..ServeConfig::for_tests() };
        let mut engine = one_tenant_engine(cfg);
        assert_eq!(engine.offer(&IngestEvent::new("acme", "cpu", 0, 0.0)).unwrap(),
            Admission::Accepted);
        assert_eq!(engine.offer(&IngestEvent::new("acme", "cpu", 1, 0.0)).unwrap(),
            Admission::Accepted);
        assert_eq!(engine.offer(&IngestEvent::new("acme", "cpu", 2, 0.0)).unwrap(),
            Admission::Retry { after_ticks: 1 });
        engine.tick().expect("tick");
        assert_eq!(engine.offer(&IngestEvent::new("acme", "cpu", 2, 0.0)).unwrap(),
            Admission::Accepted, "tick must free queue capacity");
        let stats = engine.stats();
        assert_eq!(stats.tenants["acme"].accepted, 3);
        assert_eq!(stats.tenants["acme"].retried, 1);
    }

    #[test]
    fn overload_sheds_only_low_priority_tenants() {
        let cfg = ServeConfig {
            high_water: 1,
            priority_floor: 5,
            ..ServeConfig::for_tests()
        };
        let db = SintelDb::in_memory();
        let specs = vec![
            TenantSpec::new("batch", 0, cheap_template()),
            TenantSpec::new("prod", 9, cheap_template()),
        ];
        let mut engine = ServeEngine::open(db, cfg, specs).expect("open");
        // Backlog below high water: everyone is admitted.
        assert_eq!(engine.offer(&IngestEvent::new("batch", "cpu", 0, 0.0)).unwrap(),
            Admission::Accepted);
        // Backlog at high water: the low-priority tenant is shed...
        assert_eq!(engine.offer(&IngestEvent::new("batch", "cpu", 1, 0.0)).unwrap(),
            Admission::Shed);
        // ...while the high-priority tenant still gets in.
        assert_eq!(engine.offer(&IngestEvent::new("prod", "cpu", 0, 0.0)).unwrap(),
            Admission::Accepted);
        let stats = engine.stats();
        assert_eq!(stats.tenants["batch"].shed, 1);
        assert_eq!(stats.tenants["prod"].shed, 0);
    }

    #[test]
    fn end_to_end_emits_commits_and_recovers() {
        let mut engine = one_tenant_engine(ServeConfig::for_tests());
        let mut emitted = Vec::new();
        for t in 0..128 {
            let admission =
                engine.offer(&IngestEvent::new("acme", "cpu", t, value_at(t))).unwrap();
            assert_eq!(admission, Admission::Accepted);
            if (t + 1) % 16 == 0 {
                emitted.extend(engine.tick().expect("tick"));
            }
        }
        assert!(!emitted.is_empty(), "spike at t=70 must be detected");
        assert_eq!(engine.committed_events("acme"), emitted,
            "returned events and committed events must agree");
        let ticks = engine.ticks();
        assert_eq!(ticks, 8);

        // Reopen over the same store: session, tick counter and doc ids
        // all survive; replaying the whole stream changes nothing.
        let session_before = engine.session("acme").cloned().expect("session");
        let db = engine.into_db();
        let mut engine =
            ServeEngine::open(db, ServeConfig::for_tests(), vec![TenantSpec::new(
                "acme",
                5,
                cheap_template(),
            )])
            .expect("reopen");
        assert_eq!(engine.ticks(), ticks);
        assert_eq!(engine.session("acme"), Some(&session_before));
        for t in 0..128 {
            engine.offer(&IngestEvent::new("acme", "cpu", t, value_at(t))).unwrap();
        }
        let replayed = engine.tick().expect("tick");
        assert!(replayed.is_empty(), "full replay must be absorbed idempotently");
        assert_eq!(engine.committed_events("acme"), emitted);
    }

    #[test]
    fn tick_batching_does_not_change_emissions() {
        // Tick after every event...
        let mut fine = one_tenant_engine(ServeConfig::for_tests());
        let mut fine_events = Vec::new();
        for t in 0..160 {
            fine.offer(&IngestEvent::new("acme", "cpu", t, value_at(t))).unwrap();
            fine_events.extend(fine.tick().expect("tick"));
        }
        // ...versus one giant tick at the end.
        let mut coarse = one_tenant_engine(ServeConfig::for_tests());
        for t in 0..160 {
            coarse.offer(&IngestEvent::new("acme", "cpu", t, value_at(t))).unwrap();
        }
        let coarse_events = coarse.tick().expect("tick");
        assert_eq!(fine_events, coarse_events,
            "emissions must be a pure function of the accepted event sequence");
        assert_eq!(fine.session("acme"), coarse.session("acme"));
    }
}

//! Zero-dependency HTTP status server for live runtime introspection.
//!
//! A deliberately tiny HTTP/1.0-style server on [`std::net::TcpListener`]
//! — no framework, no async runtime, four read-only routes:
//!
//! * `GET /metrics`  — Prometheus text: the global registry plus the
//!   windowed rollup series;
//! * `GET /healthz`  — readiness JSON; answers 503 once every tenant is
//!   quarantined (see [`crate::slo::Readiness`]);
//! * `GET /tenants`  — per-tenant SLO summaries as a JSON array;
//! * `GET /trace?n=N` — the most recent `N` trace spans as JSONL
//!   (default 256).
//!
//! Determinism: the server thread only ever *reads* — the published
//! [`StatusSnapshot`] (an `Arc` swap), the global metrics registry and
//! the trace ring. It holds no engine lock and writes nothing the
//! engine's commit path reads, so scraping at any rate cannot perturb
//! committed emissions or persisted bytes; the scrape-under-load
//! property test pins that down bitwise. The only registry writes from
//! this thread are the scrape counters themselves
//! (`sintel_serve_scrapes_total{endpoint}` / `sintel_serve_scrape_errors_total`),
//! which exist outside the determinism boundary by design.
//!
//! Shutdown: [`StatusServer::stop`] (also run on drop) flips a flag and
//! pokes the listener with a loopback connection so the blocking
//! `accept` wakes immediately.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::slo::{current, SharedStatus};

/// Per-connection socket timeout: a stuck scraper cannot wedge the
/// status thread for longer than this.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Default span count for `/trace` when no `n` query is given.
const DEFAULT_TRACE_TAIL: usize = 256;
/// Hard cap on `/trace?n=` to bound response size.
const MAX_TRACE_TAIL: usize = 4096;

/// A running status server (see module docs). Stops on drop.
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving the given status handle on a background thread.
    pub fn bind(addr: &str, status: SharedStatus) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sintel-status".to_string())
            .spawn(move || serve_loop(&listener, &flag, &status))?;
        Ok(StatusServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept; the connect itself may race the
        // thread already exiting, so its result is irrelevant.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: &TcpListener, stop: &AtomicBool, status: &SharedStatus) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                if handle_connection(stream, status).is_err() {
                    sintel_obs::counter_add("sintel_serve_scrape_errors_total", 1);
                }
            }
            Err(_) => {
                sintel_obs::counter_add("sintel_serve_scrape_errors_total", 1);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, status: &SharedStatus) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut stream = reader.into_inner();

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(&mut stream, 405, "Method Not Allowed", "text/plain", "GET only\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let endpoint = match path {
        "/metrics" | "/healthz" | "/tenants" | "/trace" => path.trim_start_matches('/'),
        _ => "unknown",
    };
    sintel_obs::counter_add(
        &sintel_obs::labeled("sintel_serve_scrapes_total", &[("endpoint", endpoint)]),
        1,
    );
    match path {
        "/metrics" => {
            let mut body = sintel_obs::global().snapshot().to_prometheus();
            body.push_str(&sintel_obs::rollups().snapshot().to_prometheus());
            respond(&mut stream, 200, "OK", "text/plain; version=0.0.4", &body)
        }
        "/healthz" => {
            let snapshot = current(status);
            let readiness = snapshot.readiness();
            let (code, reason) = match readiness.http_status() {
                200 => (200, "OK"),
                _ => (503, "Service Unavailable"),
            };
            respond(&mut stream, code, reason, "application/json", &snapshot.healthz_json())
        }
        "/tenants" => {
            let snapshot = current(status);
            respond(&mut stream, 200, "OK", "application/json", &snapshot.tenants_json())
        }
        "/trace" => {
            let n = query
                .and_then(|q| {
                    q.split('&').find_map(|pair| {
                        pair.strip_prefix("n=").and_then(|v| v.parse::<usize>().ok())
                    })
                })
                .unwrap_or(DEFAULT_TRACE_TAIL)
                .min(MAX_TRACE_TAIL);
            let mut body = String::new();
            for event in sintel_obs::trace_tail(n) {
                body.push_str(&event.to_json());
                body.push('\n');
            }
            respond(&mut stream, 200, "OK", "application/x-ndjson", &body)
        }
        _ => respond(&mut stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut impl Write,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{publish, shared_status, StatusSnapshot};
    use std::io::Read as _;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        let code = raw
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (code, body)
    }

    #[test]
    fn routes_respond_and_stop_joins() {
        let shared = shared_status();
        publish(&shared, StatusSnapshot { ticks: 5, ..StatusSnapshot::default() });
        let server = StatusServer::bind("127.0.0.1:0", Arc::clone(&shared)).expect("bind");
        let addr = server.local_addr();

        let (code, body) = get(addr, "/healthz");
        assert_eq!(code, 200);
        assert!(body.contains("\"ticks\":5"), "healthz body: {body}");

        let (code, body) = get(addr, "/tenants");
        assert_eq!(code, 200);
        assert_eq!(body.trim(), "[]");

        let (code, _body) = get(addr, "/metrics");
        assert_eq!(code, 200);

        let (code, _body) = get(addr, "/trace?n=8");
        assert_eq!(code, 200);

        let (code, _body) = get(addr, "/nope");
        assert_eq!(code, 404);

        server.stop();
    }
}

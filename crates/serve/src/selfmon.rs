//! Self-monitoring: the engine watches itself with its own machinery.
//!
//! Every committed tick produces a handful of operational measurements
//! (events drained, offers shed, pass failures, backlog). Instead of
//! bolting an ad-hoc alerting rule onto those numbers, the engine feeds
//! them through the exact same path a tenant's telemetry takes: a
//! [`TenantSession`] under the reserved [`SELF_TENANT`] name, running
//! the cheap fallback template (spectral residual + fixed threshold,
//! one FFT per pass). A burst of load shedding or a failure streak then
//! surfaces as an ordinary committed anomaly event under `_self`,
//! queryable with the same store API as any tenant's stream.
//!
//! The monitored value is each stream's **first difference** (this
//! tick's count minus the previous tick's), not the raw level: a
//! steady workload — even a heavy one — is a constant stream, and
//! constant nonzero input provokes boundary artifacts from the
//! spectral-residual detector. Differencing maps "steady" to an
//! all-zero stream (provably quiet) while a burst becomes a ± spike
//! pair the fallback template flags reliably.
//!
//! Determinism: the input streams are per-tick counts of *committed*
//! work, clocked by the logical tick counter — pure functions of the
//! offer/tick sequence, never wall clock. Two runs with the same offers
//! and the same tick cadence emit bitwise-identical `_self` events at
//! any thread count; the scrape-purity suite relies on that. The
//! session checkpoints into the same `serve_sessions` collection inside
//! the same group commit as tenant cuts, and the differencing baseline
//! is re-seeded from the last committed wide event on recovery, so a
//! recovered self-monitor continues exactly where the committed cut
//! left it.
//!
//! Isolation: `_self` is not a registered tenant. It cannot be offered
//! events, is invisible in [`crate::engine::ServeStats::tenants`], and
//! its emissions are never returned from
//! [`crate::engine::ServeEngine::tick`] — they are only persisted (and
//! counted in the tick's wide event), so existing purity/recovery
//! contracts over tenant streams are untouched.

use crate::engine::ServeConfig;
use crate::event::IngestEvent;
use crate::session::{PassReport, TenantSession};
use crate::slo::TickWideEvent;
use crate::Result;
use sintel_store::{Doc, SintelDb};

/// The reserved tenant name the engine's own anomalies are filed
/// under. Rejected as a registered tenant name.
pub const SELF_TENANT: &str = "_self";

/// The monitored streams, in feed order. Values are per-tick first
/// differences of: events drained, offers shed, pass failures, backlog.
const STREAMS: [&str; 4] =
    ["events_per_tick", "sheds_per_tick", "pass_failures_per_tick", "backlog"];

/// The engine's self-observation session (see module docs).
#[derive(Debug)]
pub struct SelfMonitor {
    session: TenantSession,
    doc_id: Option<u64>,
    cfg: ServeConfig,
    /// Raw stream values at the previously observed tick (the
    /// differencing baseline); `None` until the first observation.
    last_raw: Option<[f64; 4]>,
}

impl SelfMonitor {
    /// Sliding window kept per operational stream (ticks).
    const WINDOW: usize = 128;
    /// A detection pass fires every `HOP`-th tick per stream.
    const HOP: u64 = 16;
    /// Ticks buffered before the first pass may fire.
    const MIN_POINTS: usize = 32;

    /// Open the self-monitor over `db`, recovering a checkpointed
    /// `_self` session if one was committed. `ticks` is the engine's
    /// recovered tick counter: the differencing baseline is re-seeded
    /// from that tick's committed wide event (written in the same
    /// batch as the session checkpoint, so the two always agree).
    /// Scheduling knobs are fixed — the streams are one sample per
    /// tick — while the run policy and fallback template are inherited
    /// from the engine's config.
    pub fn open(db: &SintelDb, base: &ServeConfig, ticks: u64) -> Result<SelfMonitor> {
        let cfg = ServeConfig {
            window: Self::WINDOW,
            hop: Self::HOP,
            min_points: Self::MIN_POINTS,
            ..base.clone()
        };
        let (session, doc_id) = match db.serve_session(SELF_TENANT) {
            Some(doc) => {
                let id = doc.get("_id").and_then(Doc::as_i64).map(|v| v.max(0) as u64);
                (TenantSession::from_doc(&doc)?, id)
            }
            None => (TenantSession::new(SELF_TENANT), None),
        };
        let last_raw = if ticks > 0 {
            db.serve_ticks_at(ticks).first().map(|doc| {
                let field = |k: &str| {
                    doc.get(k).and_then(Doc::as_i64).unwrap_or(0).max(0) as f64
                };
                [field("drained"), field("shed"), field("pass_failures"), field("backlog")]
            })
        } else {
            None
        };
        Ok(SelfMonitor { session, doc_id, cfg, last_raw })
    }

    /// Absorb one committed tick's operational measurements, running
    /// any detection pass that falls due. Timestamps are logical ticks,
    /// so replaying an already-observed tick after recovery is dropped
    /// idempotently like any stale sample (the differencing baseline
    /// still advances, keeping replays convergent).
    pub fn observe_tick(&mut self, tick: u64, wide: &TickWideEvent) -> PassReport {
        let timestamp = tick.min(i64::MAX as u64) as i64;
        let mut report = PassReport::default();
        let template = self.cfg.fallback.clone();
        let raw = [
            wide.drained as f64,
            wide.shed as f64,
            wide.pass_failures as f64,
            wide.backlog as f64,
        ];
        let base = self.last_raw.unwrap_or(raw);
        self.last_raw = Some(raw);
        for (i, signal) in STREAMS.into_iter().enumerate() {
            let delta = raw[i] - base[i];
            let event = IngestEvent::new(SELF_TENANT, signal, timestamp, delta);
            self.session.absorb(&event, &template, &self.cfg, &mut report);
        }
        report
    }

    /// The underlying session (checkpointed by the engine each tick).
    pub fn session(&self) -> &TenantSession {
        &self.session
    }

    /// Store document id of the session checkpoint, once committed.
    pub fn doc_id(&self) -> Option<u64> {
        self.doc_id
    }

    /// Record the checkpoint document id after an upsert.
    pub fn set_doc_id(&mut self, id: u64) {
        self.doc_id = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide(tick: u64, drained: u64, shed: u64, failures: u64) -> TickWideEvent {
        TickWideEvent {
            tick,
            drained,
            shed,
            pass_failures: failures,
            ..TickWideEvent::default()
        }
    }

    #[test]
    fn quiet_workload_emits_no_self_anomalies() {
        let db = SintelDb::in_memory();
        let mut monitor = SelfMonitor::open(&db, &ServeConfig::for_tests(), 0).expect("open");
        let mut emitted = Vec::new();
        for tick in 1..=96 {
            // Heavy but perfectly steady: differencing keeps it silent.
            let report = monitor.observe_tick(tick, &wide(tick, 500, 0, 0));
            emitted.extend(report.events);
        }
        assert!(emitted.is_empty(), "steady per-tick streams must stay quiet: {emitted:?}");
        assert_eq!(monitor.session().signals().len(), 4);
        // Passes fire on the hop schedule once min_points is buffered.
        assert!(monitor.session().pass_counter() > 0);
    }

    #[test]
    fn shed_burst_surfaces_as_self_anomaly() {
        let db = SintelDb::in_memory();
        let mut monitor = SelfMonitor::open(&db, &ServeConfig::for_tests(), 0).expect("open");
        let mut events = Vec::new();
        for tick in 1..=128 {
            // One violent shed burst mid-stream.
            let shed = if (70..74).contains(&tick) { 500 } else { 0 };
            let report = monitor.observe_tick(tick, &wide(tick, 8, shed, 0));
            events.extend(report.events);
        }
        assert!(
            events.iter().any(|e| e.signal == "sheds_per_tick"),
            "a shed burst must be detected on the engine's own stream: {events:?}"
        );
        assert!(events.iter().all(|e| e.tenant == SELF_TENANT));
    }

    #[test]
    fn observation_is_idempotent_and_deterministic() {
        let db = SintelDb::in_memory();
        let feed = |monitor: &mut SelfMonitor, from: u64, to: u64| {
            let mut events = Vec::new();
            for tick in from..=to {
                let shed = if tick == 60 { 300 } else { 0 };
                events.extend(monitor.observe_tick(tick, &wide(tick, 4, shed, 0)).events);
            }
            events
        };

        let mut full = SelfMonitor::open(&db, &ServeConfig::for_tests(), 0).expect("open");
        let full_events = feed(&mut full, 1, 100);

        // Crash at tick 50, recover from the checkpoint, replay the
        // whole tick stream: stale ticks are absorbed idempotently and
        // the emission sequence converges bitwise.
        let db2 = SintelDb::in_memory();
        let mut first = SelfMonitor::open(&db2, &ServeConfig::for_tests(), 0).expect("open");
        let early = feed(&mut first, 1, 50);
        db2.upsert_serve_session(None, first.session().to_doc()).expect("checkpoint");
        let mut resumed = SelfMonitor::open(&db2, &ServeConfig::for_tests(), 0).expect("recover");
        let late = feed(&mut resumed, 1, 100);

        assert_eq!(resumed.session(), full.session());
        let mut combined = early;
        combined.extend(late);
        assert_eq!(combined, full_events);
    }

    #[test]
    fn recovery_reseeds_differencing_baseline_from_wide_event() {
        // A run whose load steps up to a new steady level right before
        // the crash: without baseline re-seeding, recovery would see
        // the post-crash level as a fresh spike.
        let db = SintelDb::in_memory();
        let mut monitor = SelfMonitor::open(&db, &ServeConfig::for_tests(), 0).expect("open");
        for tick in 1..=40u64 {
            monitor.observe_tick(tick, &wide(tick, 100, 0, 0));
        }
        db.upsert_serve_session(None, monitor.session().to_doc()).expect("checkpoint");
        db.add_serve_tick(wide(40, 100, 0, 0).to_doc());

        let recovered = SelfMonitor::open(&db, &ServeConfig::for_tests(), 40).expect("recover");
        assert_eq!(recovered.last_raw, Some([100.0, 0.0, 0.0, 0.0]));
        // Without a committed wide event at that tick, the baseline
        // stays unseeded (first post-recovery delta is then 0 by the
        // `unwrap_or(raw)` rule — still quiet, not a spike).
        let fresh = SelfMonitor::open(&db, &ServeConfig::for_tests(), 39).expect("recover");
        assert_eq!(fresh.last_raw, None);
    }
}

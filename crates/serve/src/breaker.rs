//! Per-tenant circuit breaker over detection-pass failures.
//!
//! The classic three-state machine, clocked in *logical passes* rather
//! than wall time so the whole serving tier stays deterministic and
//! crash-recoverable (a cooldown measured in seconds would make resumed
//! runs diverge from uninterrupted ones):
//!
//! ```text
//!                consecutive failures >= threshold
//!   Closed ──────────────────────────────────────────▶ Open{until_pass}
//!     ▲                                                      │
//!     │ probe succeeds                 pass_counter >= until │
//!     │                                                      ▼
//!     └───────────────────────────────────────────────── HalfOpen
//!                      probe fails: re-open (one more trip);
//!                      `quarantine_trips` trips ⇒ Quarantined
//! ```
//!
//! Failures come from the pipeline subsystem's
//! [`sintel_pipeline::policy`] taxonomy: a pass that exhausts its
//! [`sintel_pipeline::RunPolicy`] (panic, timeout, NaN, flaky error…)
//! counts one failure. Quarantine reuses the benchmark's 2-strike rule:
//! after `quarantine_trips` trips the tenant is permanently parked and
//! its ingest is shed.

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Passing normally; tracks the current failure streak.
    Closed {
        /// Consecutive failed passes since the last success.
        consecutive_failures: u32,
    },
    /// Tripped: detection passes are skipped (the buffer still slides)
    /// until the tenant's pass counter reaches `until_pass`.
    Open {
        /// First pass at which a half-open probe is allowed.
        until_pass: u64,
    },
    /// Cooldown elapsed: exactly one probe pass is allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case label (checkpoints, metrics, SLO summaries).
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What recording a failure did to the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// The failure was absorbed without a state change.
    Counted,
    /// The breaker tripped (Closed/HalfOpen → Open).
    Tripped,
    /// The trip count reached the quarantine threshold: the tenant
    /// should be permanently parked.
    Quarantined,
}

/// A per-tenant circuit breaker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breaker {
    state: BreakerState,
    trips: u32,
}

impl Default for Breaker {
    fn default() -> Self {
        Self::new()
    }
}

impl Breaker {
    /// A fresh, closed breaker.
    pub fn new() -> Self {
        Self { state: BreakerState::Closed { consecutive_failures: 0 }, trips: 0 }
    }

    /// Rebuild from checkpointed parts (see [`Breaker::parts`]).
    pub fn from_parts(state: BreakerState, trips: u32) -> Self {
        Self { state, trips }
    }

    /// The checkpointable `(state, trips)` pair.
    pub fn parts(&self) -> (BreakerState, u32) {
        (self.state, self.trips)
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has tripped so far.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Gate a scheduled pass at logical time `pass`: `true` means run
    /// the detection attempt, `false` means skip it (breaker open).
    /// An open breaker whose cooldown has elapsed transitions to
    /// half-open and lets this one probe through.
    pub fn try_pass(&mut self, pass: u64) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { until_pass } => {
                if pass >= until_pass {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful pass: any state collapses back to closed
    /// with a clean streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed { consecutive_failures: 0 };
    }

    /// Record a failed pass at logical time `pass`.
    ///
    /// * closed: the streak grows; at `threshold` the breaker trips
    ///   open for `cooldown` passes;
    /// * half-open: the probe failed — re-open immediately (one more
    ///   trip);
    /// * open: counted (a skipped pass cannot fail, but a caller may
    ///   still report one defensively).
    ///
    /// Returns [`BreakerEvent::Quarantined`] once the accumulated trip
    /// count reaches `quarantine_trips`.
    pub fn on_failure(
        &mut self,
        pass: u64,
        threshold: u32,
        cooldown: u64,
        quarantine_trips: u32,
    ) -> BreakerEvent {
        match self.state {
            BreakerState::Closed { consecutive_failures } => {
                let streak = consecutive_failures + 1;
                if streak >= threshold.max(1) {
                    self.trip(pass, cooldown, quarantine_trips)
                } else {
                    self.state = BreakerState::Closed { consecutive_failures: streak };
                    BreakerEvent::Counted
                }
            }
            BreakerState::HalfOpen => self.trip(pass, cooldown, quarantine_trips),
            BreakerState::Open { .. } => BreakerEvent::Counted,
        }
    }

    fn trip(&mut self, pass: u64, cooldown: u64, quarantine_trips: u32) -> BreakerEvent {
        self.trips += 1;
        self.state = BreakerState::Open { until_pass: pass + cooldown.max(1) };
        if self.trips >= quarantine_trips {
            BreakerEvent::Quarantined
        } else {
            BreakerEvent::Tripped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const THRESHOLD: u32 = 3;
    const COOLDOWN: u64 = 5;
    const QUARANTINE: u32 = 2;

    fn fail(b: &mut Breaker, pass: u64) -> BreakerEvent {
        b.on_failure(pass, THRESHOLD, COOLDOWN, QUARANTINE)
    }

    #[test]
    fn trips_after_consecutive_failures() {
        let mut b = Breaker::new();
        assert_eq!(fail(&mut b, 1), BreakerEvent::Counted);
        assert_eq!(fail(&mut b, 2), BreakerEvent::Counted);
        assert_eq!(fail(&mut b, 3), BreakerEvent::Tripped);
        assert_eq!(b.state(), BreakerState::Open { until_pass: 8 });
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = Breaker::new();
        fail(&mut b, 1);
        fail(&mut b, 2);
        b.on_success();
        assert_eq!(fail(&mut b, 3), BreakerEvent::Counted, "streak must restart");
        assert_eq!(b.state(), BreakerState::Closed { consecutive_failures: 1 });
    }

    #[test]
    fn open_blocks_until_cooldown_then_half_open_probe() {
        let mut b = Breaker::new();
        for p in 1..=3 {
            fail(&mut b, p);
        }
        assert!(!b.try_pass(4), "open breaker must skip passes");
        assert!(!b.try_pass(7));
        assert!(b.try_pass(8), "cooldown elapsed: probe allowed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed { consecutive_failures: 0 });
        assert!(b.try_pass(9));
    }

    #[test]
    fn failed_probe_reopens_and_second_trip_quarantines() {
        let mut b = Breaker::new();
        for p in 1..=3 {
            fail(&mut b, p);
        }
        assert!(b.try_pass(8));
        // Probe fails: that is the second trip => quarantine.
        assert_eq!(fail(&mut b, 8), BreakerEvent::Quarantined);
        assert_eq!(b.trips(), 2);
        assert!(matches!(b.state(), BreakerState::Open { .. }));
    }

    #[test]
    fn parts_round_trip() {
        let mut b = Breaker::new();
        fail(&mut b, 1);
        let (state, trips) = b.parts();
        assert_eq!(Breaker::from_parts(state, trips), b);
    }

    #[test]
    fn threshold_one_trips_immediately() {
        let mut b = Breaker::new();
        assert_eq!(b.on_failure(1, 1, 4, 99), BreakerEvent::Tripped);
        assert_eq!(b.state(), BreakerState::Open { until_pass: 5 });
    }
}

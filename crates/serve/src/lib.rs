#![warn(missing_docs)]

//! # sintel-serve
//!
//! The long-running, multi-tenant streaming serving tier (DESIGN.md
//! §4g). Tenants stream `(tenant, signal, timestamp, value)` events in;
//! the engine buffers them per signal in bounded sliding windows, runs
//! anomaly detection passes through the pipeline subsystem's incremental
//! (`update`) path, and emits seq-numbered [`event::AnomalyEvent`]s with
//! bounded latency and memory.
//!
//! Robustness machinery, layer by layer:
//!
//! * [`queue::TenantQueue`] — bounded per-tenant ingest queues; the
//!   admission protocol ([`event::Admission`]) reports backpressure
//!   (`Retry`) and load shedding (`Shed`, by tenant priority once the
//!   aggregate backlog passes the high-water mark);
//! * [`breaker::Breaker`] — a per-tenant circuit breaker (closed → open
//!   on consecutive pass failures → half-open probe) over the pipeline
//!   subsystem's [`sintel_pipeline::policy`] failure taxonomy, with the
//!   benchmark's 2-strike quarantine as the terminal state;
//! * [`session::TenantSession`] — per-tenant sliding-window buffers and
//!   detection passes. Emissions are a pure function of the accepted
//!   event sequence (never of tick boundaries or thread count), which is
//!   what makes crash recovery and the chaos suite's bitwise assertions
//!   possible;
//! * [`engine::ServeEngine`] — admission, deterministic parallel pass
//!   execution over tenants, and group-committed checkpoints: every tick
//!   persists session state and newly detected events in one
//!   [`sintel_store::Database::batch`] record, so `kill -9` loses at
//!   most one uncommitted tick and never duplicates a committed event.
//!
//! Before any of that machinery runs, [`analysis::analyze_deployment`]
//! statically checks the whole deployment — config domains, tenant
//! roster, fallback compatibility with the serve window, shedding and
//! breaker reachability, and the fallback-cheaper-than-primary cost
//! invariant — through `sintel-analyze`'s coded diagnostics
//! (SA008/SA010–SA014); [`ServeEngine::open`] refuses deployments whose
//! report has errors.
//!
//! With the `faulty` feature, [`fault`] adds serve-level crash points
//! (e.g. between checkpoint commit and emission) on top of the faulty
//! primitive family and the store's WAL crash points.
//!
//! Live introspection (DESIGN.md §4h) rides on top without touching
//! the determinism boundary:
//!
//! * [`slo`] — per-tick [`slo::TickWideEvent`] records (persisted to
//!   the `serve_ticks` collection inside each tick's group commit) and
//!   the immutable [`slo::StatusSnapshot`] the engine publishes;
//! * [`http::StatusServer`] — a zero-dependency HTTP endpoint serving
//!   `/metrics`, `/healthz`, `/tenants` and `/trace` from published
//!   snapshots and the global registry, read-only by construction;
//! * [`selfmon`] — the engine feeds its own per-tick operational
//!   streams through a fallback-template detection pass under the
//!   reserved [`selfmon::SELF_TENANT`] tenant.

pub mod analysis;
pub mod breaker;
pub mod engine;
pub mod event;
#[cfg(feature = "faulty")]
pub mod fault;
pub mod http;
pub mod queue;
pub mod selfmon;
pub mod session;
pub mod slo;

pub use analysis::analyze_deployment;
pub use breaker::{Breaker, BreakerEvent, BreakerState};
pub use engine::{ServeConfig, ServeEngine, ServeStats, TenantSpec, TenantStats};
pub use event::{Admission, AnomalyEvent, IngestEvent};
pub use http::StatusServer;
pub use queue::TenantQueue;
pub use selfmon::{SelfMonitor, SELF_TENANT};
pub use session::TenantSession;
pub use slo::{
    Readiness, SharedStatus, StatusSnapshot, TenantSlo, TenantTickStats, TickWideEvent,
    VOLATILE_TICK_FIELDS,
};

/// Errors produced by the serving tier.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid [`engine::ServeConfig`].
    Config(String),
    /// An event was offered for a tenant that was never registered.
    UnknownTenant(String),
    /// The knowledge-base layer failed.
    Store(sintel_store::StoreError),
    /// A persisted session checkpoint could not be decoded.
    Checkpoint(String),
    /// A crash injected by [`fault`]; carries the crash-point label.
    /// Test-only.
    #[cfg(feature = "faulty")]
    Injected(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "config error: {m}"),
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant '{t}'"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            #[cfg(feature = "faulty")]
            ServeError::Injected(point) => write!(f, "injected crash at {point}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<sintel_store::StoreError> for ServeError {
    fn from(e: sintel_store::StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

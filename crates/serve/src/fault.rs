//! Serve-level crash-point injection (the `faulty` feature's chaos
//! hooks), mirroring `sintel_store::wal::fault` one layer up: these
//! points crash the *engine tick* rather than the durability path, so
//! the chaos suite can simulate `kill -9` at the exact moments the
//! checkpoint protocol is supposed to protect.

use std::sync::Mutex;

/// Where in the tick the simulated crash strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before any queue is drained or anything is written: the whole
    /// tick (queued events included, if the process dies) is lost —
    /// exactly one uncommitted checkpoint interval.
    BeforeCheckpoint,
    /// After the checkpoint batch has committed but before the events
    /// are returned to the caller: the store holds the events, the
    /// consumer never saw them. Recovery must neither lose nor
    /// duplicate them.
    BetweenCheckpointAndEmit,
}

impl CrashPoint {
    /// All crash points, for exhaustive harness sweeps.
    pub const ALL: [CrashPoint; 2] =
        [CrashPoint::BeforeCheckpoint, CrashPoint::BetweenCheckpointAndEmit];

    /// Stable label (used in the injected error and in logs).
    pub fn label(self) -> &'static str {
        match self {
            CrashPoint::BeforeCheckpoint => "before-checkpoint",
            CrashPoint::BetweenCheckpointAndEmit => "between-checkpoint-and-emit",
        }
    }
}

static ARMED: Mutex<Option<CrashPoint>> = Mutex::new(None);

fn armed() -> std::sync::MutexGuard<'static, Option<CrashPoint>> {
    ARMED.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm one crash point; the next tick reaching it crashes (once).
pub fn arm(point: CrashPoint) {
    *armed() = Some(point);
}

/// Disarm any armed crash point.
pub fn disarm() {
    *armed() = None;
}

/// True (and disarms) when `point` is the armed crash point.
pub(crate) fn take(point: CrashPoint) -> bool {
    let mut guard = armed();
    if *guard == Some(point) {
        *guard = None;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_take_disarm_cycle() {
        disarm();
        assert!(!take(CrashPoint::BeforeCheckpoint));
        arm(CrashPoint::BetweenCheckpointAndEmit);
        assert!(!take(CrashPoint::BeforeCheckpoint), "wrong point must not fire");
        assert!(take(CrashPoint::BetweenCheckpointAndEmit));
        assert!(!take(CrashPoint::BetweenCheckpointAndEmit), "points fire once");
        arm(CrashPoint::BeforeCheckpoint);
        disarm();
        assert!(!take(CrashPoint::BeforeCheckpoint));
    }

    #[test]
    fn labels_are_stable() {
        for point in CrashPoint::ALL {
            assert!(!point.label().is_empty());
        }
    }
}

//! Per-tenant SLO model and per-tick "wide events".
//!
//! Two observability shapes live here:
//!
//! * [`TickWideEvent`] — one structured record per engine tick: total
//!   and per-tenant admission deltas, drain/absorb/pass counts, pass
//!   wall time, the *previous* tick's checkpoint-commit duration (the
//!   current one is unknowable until after the record is committed)
//!   and the post-tick backlog. The engine persists it to the
//!   `serve_ticks` collection inside the same group commit as the
//!   session checkpoints, so post-hoc forensics can replay exactly
//!   what every committed tick looked like.
//! * [`StatusSnapshot`] / [`TenantSlo`] — the read-only view the HTTP
//!   status server exposes. The engine publishes a fresh immutable
//!   snapshot behind a [`SharedStatus`] handle once per tick; scrapes
//!   clone an `Arc`, never touching engine state, which is how the
//!   endpoint stays invisible to the bitwise-determinism contract.
//!
//! Wall-clock fields (`pass_seconds`, `checkpoint_seconds`) are the
//! only nondeterministic values in a persisted wide event; byte-level
//! determinism tests mask exactly [`VOLATILE_TICK_FIELDS`].

use std::sync::{Arc, Mutex};

use sintel_store::Doc;

use crate::engine::TenantStats;

/// Wide-event fields whose values are wall-clock measurements and so
/// legitimately differ between two otherwise identical runs. Byte
/// comparisons of `serve_ticks` documents must mask these (and only
/// these) fields, at both the tick and per-tenant level.
pub const VOLATILE_TICK_FIELDS: &[&str] = &["pass_seconds", "checkpoint_seconds"];

/// One tenant's slice of a [`TickWideEvent`]: per-tick deltas plus the
/// tenant's protection state after the tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantTickStats {
    /// Tenant name.
    pub tenant: String,
    /// Events admitted since the previous tick.
    pub accepted: u64,
    /// Offers answered `Retry` since the previous tick.
    pub retried: u64,
    /// Offers shed since the previous tick.
    pub shed: u64,
    /// Events drained out of the queue by this tick.
    pub drained: u64,
    /// Samples absorbed into session buffers this tick.
    pub absorbed: u64,
    /// Stale/duplicate samples dropped this tick.
    pub stale_dropped: u64,
    /// Anomaly events committed this tick.
    pub emitted: u64,
    /// Detection passes attempted this tick.
    pub passes_run: u64,
    /// Scheduled passes skipped this tick (breaker open/quarantined).
    pub passes_skipped: u64,
    /// Attempted passes that failed this tick.
    pub pass_failures: u64,
    /// Wall time spent in this tenant's detection passes this tick
    /// (volatile; masked in determinism tests).
    pub pass_seconds: f64,
    /// Breaker state after the tick (`closed`/`open`/`half_open`).
    pub breaker_state: String,
    /// Cumulative breaker trips.
    pub breaker_trips: u64,
    /// Running the fallback pipeline after this tick.
    pub degraded: bool,
    /// Permanently parked after this tick.
    pub quarantined: bool,
}

impl TenantTickStats {
    /// Encode as a store document (nested under a wide event).
    pub fn to_doc(&self) -> Doc {
        Doc::obj()
            .with("tenant", self.tenant.as_str())
            .with("accepted", self.accepted)
            .with("retried", self.retried)
            .with("shed", self.shed)
            .with("drained", self.drained)
            .with("absorbed", self.absorbed)
            .with("stale_dropped", self.stale_dropped)
            .with("emitted", self.emitted)
            .with("passes_run", self.passes_run)
            .with("passes_skipped", self.passes_skipped)
            .with("pass_failures", self.pass_failures)
            .with("pass_seconds", self.pass_seconds)
            .with("breaker_state", self.breaker_state.as_str())
            .with("breaker_trips", self.breaker_trips)
            .with("degraded", self.degraded)
            .with("quarantined", self.quarantined)
    }
}

/// One structured record per engine tick (see module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickWideEvent {
    /// The tick this record describes (1-based, monotonic across
    /// recoveries).
    pub tick: u64,
    /// Events admitted since the previous tick, all tenants.
    pub accepted: u64,
    /// `Retry` answers since the previous tick, all tenants.
    pub retried: u64,
    /// Shed offers since the previous tick, all tenants.
    pub shed: u64,
    /// Events drained into sessions by this tick.
    pub drained: u64,
    /// Samples absorbed into buffers this tick.
    pub absorbed: u64,
    /// Anomaly events committed this tick (tenant streams only; the
    /// self-monitor's are counted in [`TickWideEvent::self_events`]).
    pub emitted: u64,
    /// Detection passes attempted this tick.
    pub passes_run: u64,
    /// Attempted passes that failed this tick.
    pub pass_failures: u64,
    /// Anomaly events the self-monitor emitted on the engine's own
    /// operational streams this tick.
    pub self_events: u64,
    /// Events still queued after the tick (offers that arrived for
    /// other tenants while this tick was cut — always 0 for the
    /// single-writer engine, kept for forward compatibility).
    pub backlog: u64,
    /// Wall time spent in detection passes this tick, all tenants
    /// (volatile; masked in determinism tests).
    pub pass_seconds: f64,
    /// Commit duration of the *previous* tick's checkpoint batch
    /// (volatile; masked in determinism tests). The current tick's
    /// commit hasn't happened when this record is written into it.
    pub checkpoint_seconds: f64,
    /// Per-tenant slices, tenant-name order.
    pub tenants: Vec<TenantTickStats>,
}

impl TickWideEvent {
    /// Encode as a `serve_ticks` document.
    pub fn to_doc(&self) -> Doc {
        let tenants: Vec<Doc> = self.tenants.iter().map(TenantTickStats::to_doc).collect();
        Doc::obj()
            .with("tick", self.tick)
            .with("accepted", self.accepted)
            .with("retried", self.retried)
            .with("shed", self.shed)
            .with("drained", self.drained)
            .with("absorbed", self.absorbed)
            .with("emitted", self.emitted)
            .with("passes_run", self.passes_run)
            .with("pass_failures", self.pass_failures)
            .with("self_events", self.self_events)
            .with("backlog", self.backlog)
            .with("pass_seconds", self.pass_seconds)
            .with("checkpoint_seconds", self.checkpoint_seconds)
            .with("tenants", Doc::Arr(tenants))
    }

    /// One JSON line (for `--tick-log` tailing).
    pub fn to_json_line(&self) -> String {
        sintel_store::json::to_json(&self.to_doc())
    }
}

/// The per-tenant SLO summary the `/tenants` endpoint serves:
/// cumulative counters plus derived ratios and protection state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSlo {
    /// Tenant name.
    pub tenant: String,
    /// Load-shedding priority.
    pub priority: u8,
    /// Queue depth at the last publish.
    pub queue_depth: u64,
    /// Cumulative admission / processing counters.
    pub stats: TenantStats,
    /// Breaker state (`closed`/`open`/`half_open`).
    pub breaker_state: String,
}

impl TenantSlo {
    /// Offered events (accepted + retried + shed).
    pub fn offered(&self) -> u64 {
        self.stats.accepted + self.stats.retried + self.stats.shed
    }

    /// Fraction of offers shed (0 when nothing was offered).
    pub fn shed_ratio(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.stats.shed as f64 / offered as f64
        }
    }

    /// Fraction of attempted passes that failed (0 when none ran).
    pub fn failure_ratio(&self) -> f64 {
        if self.stats.passes_run == 0 {
            0.0
        } else {
            self.stats.pass_failures as f64 / self.stats.passes_run as f64
        }
    }

    /// Encode as one element of the `/tenants` JSON array.
    pub fn to_doc(&self) -> Doc {
        Doc::obj()
            .with("tenant", self.tenant.as_str())
            .with("priority", self.priority as i64)
            .with("queue_depth", self.queue_depth)
            .with("accepted", self.stats.accepted)
            .with("retried", self.stats.retried)
            .with("shed", self.stats.shed)
            .with("shed_ratio", self.shed_ratio())
            .with("absorbed", self.stats.absorbed)
            .with("emitted", self.stats.emitted)
            .with("passes_run", self.stats.passes_run)
            .with("passes_skipped", self.stats.passes_skipped)
            .with("pass_failures", self.stats.pass_failures)
            .with("failure_ratio", self.failure_ratio())
            .with("breaker_state", self.breaker_state.as_str())
            .with("breaker_trips", self.stats.breaker_trips)
            .with("degraded", self.stats.degraded)
            .with("quarantined", self.stats.quarantined)
    }
}

/// The immutable snapshot a status server reads. The engine swaps in a
/// fresh `Arc<StatusSnapshot>` once per tick; scrapes clone the `Arc`.
#[derive(Debug, Clone, Default)]
pub struct StatusSnapshot {
    /// Ticks committed so far.
    pub ticks: u64,
    /// Events queued across all tenants at the last publish.
    pub backlog: u64,
    /// Per-tenant SLO summaries, tenant-name order.
    pub tenants: Vec<TenantSlo>,
    /// The last committed wide event, if any tick has run.
    pub last_tick: Option<TickWideEvent>,
}

/// Health classification of a [`StatusSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// Every tenant healthy.
    Ok,
    /// Serving, but some tenant is degraded, tripped or quarantined.
    Degraded,
    /// No tenant can be served (all quarantined): scrape targets
    /// should fail readiness.
    Unready,
}

impl Readiness {
    /// Stable lower-case label.
    pub fn as_str(self) -> &'static str {
        match self {
            Readiness::Ok => "ok",
            Readiness::Degraded => "degraded",
            Readiness::Unready => "unready",
        }
    }

    /// The HTTP status code `/healthz` answers with.
    pub fn http_status(self) -> u16 {
        match self {
            Readiness::Ok | Readiness::Degraded => 200,
            Readiness::Unready => 503,
        }
    }
}

impl StatusSnapshot {
    /// Breaker/quarantine-aware readiness (see [`Readiness`]).
    pub fn readiness(&self) -> Readiness {
        if !self.tenants.is_empty() && self.tenants.iter().all(|t| t.stats.quarantined) {
            return Readiness::Unready;
        }
        let impaired = self.tenants.iter().any(|t| {
            t.stats.quarantined || t.stats.degraded || t.breaker_state != "closed"
        });
        if impaired {
            Readiness::Degraded
        } else {
            Readiness::Ok
        }
    }

    /// The `/healthz` JSON body.
    pub fn healthz_json(&self) -> String {
        let readiness = self.readiness();
        let quarantined = self.tenants.iter().filter(|t| t.stats.quarantined).count();
        let degraded = self.tenants.iter().filter(|t| t.stats.degraded).count();
        let open = self.tenants.iter().filter(|t| t.breaker_state != "closed").count();
        let doc = Doc::obj()
            .with("status", readiness.as_str())
            .with("ticks", self.ticks)
            .with("backlog", self.backlog)
            .with("tenants", self.tenants.len())
            .with("quarantined", quarantined)
            .with("degraded", degraded)
            .with("breakers_not_closed", open);
        sintel_store::json::to_json(&doc)
    }

    /// The `/tenants` JSON body (array, tenant-name order).
    pub fn tenants_json(&self) -> String {
        let docs: Vec<Doc> = self.tenants.iter().map(TenantSlo::to_doc).collect();
        sintel_store::json::to_json(&Doc::Arr(docs))
    }
}

/// The handle the engine publishes snapshots through and the status
/// server reads from. Double-`Arc`: the outer one is shared between
/// engine and server threads, the inner one makes each published
/// snapshot immutable and cheap to hand to a scrape.
pub type SharedStatus = Arc<Mutex<Arc<StatusSnapshot>>>;

/// A fresh handle holding an empty snapshot.
pub fn shared_status() -> SharedStatus {
    Arc::new(Mutex::new(Arc::new(StatusSnapshot::default())))
}

/// Publish a new snapshot (engine side).
pub fn publish(shared: &SharedStatus, snapshot: StatusSnapshot) {
    *shared.lock().unwrap_or_else(|e| e.into_inner()) = Arc::new(snapshot);
}

/// Read the current snapshot (server side).
pub fn current(shared: &SharedStatus) -> Arc<StatusSnapshot> {
    shared.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo(name: &str, quarantined: bool, degraded: bool, breaker: &str) -> TenantSlo {
        TenantSlo {
            tenant: name.to_string(),
            priority: 5,
            queue_depth: 0,
            stats: TenantStats { quarantined, degraded, ..TenantStats::default() },
            breaker_state: breaker.to_string(),
        }
    }

    #[test]
    fn readiness_classification() {
        let mut snap = StatusSnapshot::default();
        assert_eq!(snap.readiness(), Readiness::Ok, "no tenants: engine itself is up");

        snap.tenants = vec![slo("a", false, false, "closed"), slo("b", false, false, "closed")];
        assert_eq!(snap.readiness(), Readiness::Ok);

        snap.tenants[1].stats.degraded = true;
        assert_eq!(snap.readiness(), Readiness::Degraded);
        assert_eq!(snap.readiness().http_status(), 200);

        snap.tenants[1] = slo("b", false, false, "open");
        assert_eq!(snap.readiness(), Readiness::Degraded);

        snap.tenants = vec![slo("a", true, false, "closed"), slo("b", true, false, "closed")];
        assert_eq!(snap.readiness(), Readiness::Unready);
        assert_eq!(snap.readiness().http_status(), 503);

        // One healthy tenant keeps the engine ready.
        snap.tenants.push(slo("c", false, false, "closed"));
        assert_eq!(snap.readiness(), Readiness::Degraded);
    }

    #[test]
    fn slo_ratios() {
        let mut t = slo("a", false, false, "closed");
        assert_eq!(t.shed_ratio(), 0.0);
        assert_eq!(t.failure_ratio(), 0.0);
        t.stats.accepted = 6;
        t.stats.shed = 2;
        t.stats.retried = 0;
        assert!((t.shed_ratio() - 0.25).abs() < 1e-12);
        t.stats.passes_run = 4;
        t.stats.pass_failures = 1;
        assert!((t.failure_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wide_event_doc_shape_and_json_line() {
        let wide = TickWideEvent {
            tick: 3,
            accepted: 10,
            drained: 10,
            absorbed: 9,
            emitted: 1,
            passes_run: 2,
            tenants: vec![TenantTickStats {
                tenant: "acme".to_string(),
                accepted: 10,
                drained: 10,
                absorbed: 9,
                emitted: 1,
                passes_run: 2,
                breaker_state: "closed".to_string(),
                ..TenantTickStats::default()
            }],
            ..TickWideEvent::default()
        };
        let doc = wide.to_doc();
        assert_eq!(doc.get("tick").unwrap().as_i64(), Some(3));
        assert_eq!(doc.get("tenants").unwrap().as_arr().unwrap().len(), 1);
        let line = wide.to_json_line();
        assert!(line.contains("\"tick\":3"));
        assert!(line.contains("\"tenant\":\"acme\""));
        assert!(!line.contains('\n'));
        for field in VOLATILE_TICK_FIELDS {
            assert!(line.contains(&format!("\"{field}\":")), "volatile field {field} present");
        }
    }

    #[test]
    fn healthz_and_tenants_json_render() {
        let snap = StatusSnapshot {
            ticks: 7,
            backlog: 2,
            tenants: vec![slo("acme", false, true, "closed")],
            last_tick: None,
        };
        let health = snap.healthz_json();
        assert!(health.contains("\"status\":\"degraded\""));
        assert!(health.contains("\"ticks\":7"));
        assert!(health.contains("\"degraded\":1"));
        let tenants = snap.tenants_json();
        assert!(tenants.starts_with('['));
        assert!(tenants.contains("\"tenant\":\"acme\""));
        assert!(tenants.contains("\"breaker_state\":\"closed\""));
    }

    #[test]
    fn shared_status_publish_and_read() {
        let shared = shared_status();
        assert_eq!(current(&shared).ticks, 0);
        publish(&shared, StatusSnapshot { ticks: 42, ..StatusSnapshot::default() });
        assert_eq!(current(&shared).ticks, 42);
    }
}

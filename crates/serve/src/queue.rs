//! Bounded per-tenant ingest queues.
//!
//! Each tenant owns one queue; the bound is what turns a slow consumer
//! into visible backpressure ([`crate::Admission::Retry`]) instead of
//! unbounded memory growth. The engine drains whole queues per tick, so
//! a queue never holds more than one tick's worth of backlog plus the
//! events admitted since.

use std::collections::VecDeque;

use crate::event::IngestEvent;

/// A bounded FIFO of pending ingest events for one tenant.
#[derive(Debug)]
pub struct TenantQueue {
    events: VecDeque<IngestEvent>,
    capacity: usize,
}

impl TenantQueue {
    /// An empty queue holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self { events: VecDeque::new(), capacity: capacity.max(1) }
    }

    /// Enqueue an event; `false` (and no mutation) when full.
    pub fn try_push(&mut self, event: IngestEvent) -> bool {
        if self.events.len() >= self.capacity {
            return false;
        }
        self.events.push_back(event);
        true
    }

    /// Take every queued event, in arrival order.
    pub fn drain_all(&mut self) -> Vec<IngestEvent> {
        self.events.drain(..).collect()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: i64) -> IngestEvent {
        IngestEvent::new("t", "s", ts, 0.0)
    }

    #[test]
    fn push_until_full_then_reject() {
        let mut q = TenantQueue::new(2);
        assert!(q.try_push(ev(0)));
        assert!(q.try_push(ev(1)));
        assert!(!q.try_push(ev(2)), "third push must be rejected");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_preserves_arrival_order_and_empties() {
        let mut q = TenantQueue::new(8);
        for t in 0..5 {
            assert!(q.try_push(ev(t)));
        }
        let drained = q.drain_all();
        assert_eq!(drained.iter().map(|e| e.timestamp).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        // Capacity is available again after a drain.
        assert!(q.try_push(ev(9)));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut q = TenantQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(ev(0)));
        assert!(!q.try_push(ev(1)));
    }
}

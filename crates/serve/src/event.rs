//! Ingest and emission event types, and the admission protocol.

/// One streamed sample: a `(tenant, signal, timestamp, value)` tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestEvent {
    /// Tenant the sample belongs to.
    pub tenant: String,
    /// Signal name within the tenant.
    pub signal: String,
    /// Sample timestamp (must be strictly increasing per signal; stale
    /// or duplicate timestamps are absorbed idempotently, which is what
    /// makes at-least-once replay after a crash safe).
    pub timestamp: i64,
    /// Sample value.
    pub value: f64,
}

impl IngestEvent {
    /// Construct an event.
    pub fn new(tenant: &str, signal: &str, timestamp: i64, value: f64) -> Self {
        Self { tenant: tenant.to_string(), signal: signal.to_string(), timestamp, value }
    }
}

/// Admission decision for one offered event — the backpressure
/// protocol callers must honour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued; the event is processed on the next tick.
    Accepted,
    /// The tenant's bounded queue is full. The caller should run (or
    /// wait for) `after_ticks` engine ticks and re-offer the event —
    /// nothing was dropped.
    Retry {
        /// How many ticks to wait before re-offering.
        after_ticks: u32,
    },
    /// Load-shed: the event was dropped. Either the aggregate backlog
    /// is past the high-water mark and this tenant's priority is below
    /// the floor, or the tenant has been quarantined.
    Shed,
}

/// A committed anomaly event emitted by the serving tier.
///
/// `seq` is per-tenant, dense and monotonic: consumers deduplicate
/// re-deliveries by `(tenant, seq)`, and the crash-recovery property
/// test asserts the committed `seq` sequence of an interrupted run is
/// identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyEvent {
    /// Tenant the anomaly belongs to.
    pub tenant: String,
    /// Signal the anomaly was detected on.
    pub signal: String,
    /// Per-tenant emission sequence number (0-based, dense).
    pub seq: u64,
    /// Anomaly interval start (timestamp space).
    pub start: i64,
    /// Anomaly interval end (timestamp space).
    pub end: i64,
    /// Detection severity score.
    pub severity: f64,
    /// The tenant's detection-pass counter when this event was found.
    pub pass: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_event_construction() {
        let ev = IngestEvent::new("acme", "cpu", 42, 0.5);
        assert_eq!(ev.tenant, "acme");
        assert_eq!(ev.signal, "cpu");
        assert_eq!(ev.timestamp, 42);
        assert_eq!(ev.value, 0.5);
    }

    #[test]
    fn admission_variants_compare() {
        assert_eq!(Admission::Accepted, Admission::Accepted);
        assert_eq!(Admission::Retry { after_ticks: 1 }, Admission::Retry { after_ticks: 1 });
        assert_ne!(Admission::Accepted, Admission::Shed);
    }
}

//! The AD pipeline hub (paper §3.2): the named, verified end-to-end
//! pipelines of the evaluation. Users pick one by name
//! (`Sintel(pipeline="lstm_dynamic_threshold")`, Figure 4a), or define
//! their own [`Template`].

use sintel_primitives::HyperValue;

use crate::template::{StepSpec, Template};
use crate::{Pipeline, PipelineError, Result};

const TARGET: &str = "sintel::pipeline::hub";

/// Pipeline names available in the hub, in the paper's Table 3 order.
pub const PIPELINE_NAMES: &[&str] = &[
    "lstm_dynamic_threshold",
    "dense_autoencoder",
    "lstm_autoencoder",
    "tadgan",
    "arima",
    "azure_anomaly_detection",
];

/// Extension pipelines beyond the paper's six (kept out of
/// [`available_pipelines`] so the benchmark defaults match Table 3):
/// `matrix_profile` (the Stumpy comparator of Table 1), `holt_winters`
/// (the HWDS forecaster of reference [37]), and
/// `arima_shift_robust` — `arima` with the §5 change-point /
/// decomposition preprocessing in front, used by the A4 discussion
/// experiment.
pub const EXTENSION_PIPELINES: &[&str] =
    &["matrix_profile", "holt_winters", "arima_shift_robust"];

/// Common preprocessing front (Figure 2a left): aggregate → impute →
/// scale to `[-1, 1]`.
fn preprocessing() -> Vec<StepSpec> {
    vec![
        StepSpec::plain("time_segments_aggregate"),
        StepSpec::plain("SimpleImputer"),
        StepSpec::plain("MinMaxScaler"),
    ]
}

/// Retrieve a hub template by name.
pub fn template_by_name(name: &str) -> Result<Template> {
    let mut steps = preprocessing();
    match name {
        "lstm_dynamic_threshold" => {
            steps.push(StepSpec::with(
                "rolling_window_sequences",
                &[("window_size", HyperValue::Int(50)), ("targets", HyperValue::Flag(true))],
            ));
            steps.push(StepSpec::plain("lstm_regressor"));
            steps.push(StepSpec::plain("regression_errors"));
            steps.push(StepSpec::plain("find_anomalies"));
        }
        "arima" => {
            steps.push(StepSpec::plain("arima"));
            steps.push(StepSpec::plain("regression_errors"));
            steps.push(StepSpec::plain("find_anomalies"));
        }
        "lstm_autoencoder" => {
            steps.push(StepSpec::with(
                "rolling_window_sequences",
                &[
                    ("window_size", HyperValue::Int(40)),
                    ("targets", HyperValue::Flag(false)),
                    ("step", HyperValue::Int(2)),
                ],
            ));
            steps.push(StepSpec::plain("lstm_autoencoder"));
            steps.push(StepSpec::plain("reconstruction_errors"));
            steps.push(StepSpec::plain("find_anomalies"));
        }
        "dense_autoencoder" => {
            steps.push(StepSpec::with(
                "rolling_window_sequences",
                &[
                    ("window_size", HyperValue::Int(40)),
                    ("targets", HyperValue::Flag(false)),
                    ("step", HyperValue::Int(2)),
                ],
            ));
            steps.push(StepSpec::plain("dense_autoencoder"));
            steps.push(StepSpec::plain("reconstruction_errors"));
            steps.push(StepSpec::plain("find_anomalies"));
        }
        "tadgan" => {
            steps.push(StepSpec::with(
                "rolling_window_sequences",
                &[
                    ("window_size", HyperValue::Int(40)),
                    ("targets", HyperValue::Flag(false)),
                    ("step", HyperValue::Int(2)),
                ],
            ));
            steps.push(StepSpec::plain("tadgan"));
            steps.push(StepSpec::plain("reconstruction_errors"));
            steps.push(StepSpec::plain("find_anomalies"));
        }
        "azure_anomaly_detection" => {
            steps.push(StepSpec::plain("azure_anomaly_service"));
            // The service is threshold-based and aggressive: a low fixed
            // threshold reproduces its high-recall / low-precision
            // behaviour (Table 3).
            steps.push(StepSpec::with("fixed_threshold", &[("k", HyperValue::Float(0.5))]));
        }
        "matrix_profile" => {
            steps.push(StepSpec::plain("matrix_profile"));
            steps.push(StepSpec::plain("find_anomalies"));
        }
        "holt_winters" => {
            steps.push(StepSpec::plain("holt_winters"));
            steps.push(StepSpec::plain("regression_errors"));
            steps.push(StepSpec::plain("find_anomalies"));
        }
        "arima_shift_robust" => {
            // §5 remedy: eliminate distribution shifts before modeling.
            steps.push(StepSpec::plain("remove_level_shifts"));
            steps.push(StepSpec::plain("arima"));
            steps.push(StepSpec::plain("regression_errors"));
            steps.push(StepSpec::plain("find_anomalies"));
        }
        other => return Err(PipelineError::UnknownPipeline(other.to_string())),
    }
    Ok(Template { name: name.to_string(), steps })
}

/// Build a hub pipeline by name with default hyperparameters.
///
/// Gate: the template is first checked against the primitives' static
/// contracts (`sintel-analyze`). Warn-level diagnostics are logged via
/// `sintel-obs`; the first Error-level diagnostic refuses the build with
/// a structured [`PipelineError::BadTemplate`].
pub fn build_pipeline(name: &str) -> Result<Pipeline> {
    let template = template_by_name(name)?;
    let report = template.analyze();
    for warn in report.warnings() {
        sintel_obs::warn!(
            TARGET,
            format!("template diagnostic: {}", warn.message),
            pipeline = name,
            code = warn.code.as_str(),
            step = warn.step,
            primitive = warn.primitive.as_str(),
        );
    }
    if let Some(err) = report.errors().next() {
        return Err(PipelineError::BadTemplate {
            code: err.code.as_str().to_string(),
            step: err.primitive.clone(),
            message: format!("step {} ({}): {}", err.step, err.primitive, err.message),
        });
    }
    template.build_default()
}

/// Names of the pipelines in the hub.
pub fn available_pipelines() -> &'static [&'static str] {
    PIPELINE_NAMES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_pipelines_build() {
        for name in EXTENSION_PIPELINES {
            let t = template_by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            t.build_default().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn all_hub_templates_build() {
        for name in available_pipelines() {
            let t = template_by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            let p = t.build_default().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p.name(), *name);
            assert!(!p.is_fitted());
        }
    }

    #[test]
    fn unknown_pipeline_rejected() {
        assert!(matches!(
            template_by_name("prophet"),
            Err(PipelineError::UnknownPipeline(_))
        ));
    }

    #[test]
    fn hub_pipelines_have_three_engines() {
        use sintel_primitives::{build_primitive, Engine};
        for name in available_pipelines() {
            let t = template_by_name(name).unwrap();
            let engines: Vec<Engine> = t
                .steps
                .iter()
                .map(|s| build_primitive(&s.primitive).unwrap().meta().engine)
                .collect();
            assert!(engines.contains(&Engine::Preprocessing), "{name}");
            assert!(engines.contains(&Engine::Modeling), "{name}");
            assert!(engines.contains(&Engine::Postprocessing), "{name}");
        }
    }

    #[test]
    fn joint_space_is_nonempty_for_all() {
        for name in available_pipelines() {
            let t = template_by_name(name).unwrap();
            let space = t.hyperparameter_space().unwrap();
            assert!(!space.is_empty(), "{name} has an empty tunable space");
            // Every pipeline must expose postprocessing knobs (the paper
            // reports 15% of tuning changes landing there).
            assert!(
                space.iter().any(|(p, _)| p.step >= t.steps.len() - 1
                    || space.iter().any(|(q, _)| q.step > p.step)),
                "{name}"
            );
        }
    }
}

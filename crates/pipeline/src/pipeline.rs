//! The configured, executable pipeline ⟨V, E, λ⟩ with its fit / detect
//! lifecycle.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sintel_obs::FieldValue;
use sintel_primitives::{Context, Engine, Primitive, Value};
use sintel_timeseries::{ScoredInterval, Signal};

use crate::profile::{PipelineProfile, StepProfile};
use crate::{PipelineError, Result};

/// Best-effort extraction of a panic payload into a printable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Contract sanitizer (cargo feature `sanitizer`): every slot the
/// primitive actually read during `phase` must be declared — with the
/// matching phase flag — in its static contract.
#[cfg(feature = "sanitizer")]
fn sanitize_reads(
    contract: &sintel_primitives::Contract,
    step: &str,
    phase: &str,
    reads: Vec<String>,
) -> Result<()> {
    for slot in reads {
        let declared = contract
            .reads
            .iter()
            .any(|r| r.slot == slot && if phase == "fit" { r.fit } else { r.produce });
        if !declared {
            return Err(PipelineError::ContractViolation {
                step: step.to_string(),
                phase: phase.to_string(),
                access: "read".to_string(),
                slot,
            });
        }
    }
    Ok(())
}

/// Contract sanitizer: every slot the primitive emitted must be a
/// declared write.
#[cfg(feature = "sanitizer")]
fn sanitize_writes(
    contract: &sintel_primitives::Contract,
    step: &str,
    phase: &str,
    outputs: &[(String, Value)],
) -> Result<()> {
    for (slot, _) in outputs {
        if !contract.writes.iter().any(|w| &w.slot == slot) {
            return Err(PipelineError::ContractViolation {
                step: step.to_string(),
                phase: phase.to_string(),
                access: "write".to_string(),
                slot: slot.clone(),
            });
        }
    }
    Ok(())
}

/// True when every float a primitive emitted is finite. Timestamps and
/// indices are integral and cannot be poisoned; full signals are only
/// re-emitted by preprocessing, which is exempt from the guard.
fn value_is_finite(value: &Value) -> bool {
    match value {
        Value::Series(v) => v.iter().all(|x| x.is_finite()),
        Value::Windows(w) => w.is_finite(),
        Value::Intervals(ivs) => ivs.iter().all(|iv| iv.score.is_finite()),
        Value::Scalar(x) => x.is_finite(),
        Value::Timestamps(_) | Value::Indices(_) | Value::Signal(_) => true,
    }
}

/// An executable anomaly detection pipeline.
///
/// `fit(signal)` runs every primitive's `fit` then `produce` over the
/// training signal (modeling primitives need their preprocessing outputs
/// produced before they can fit, hence the interleaving). `detect(signal)`
/// runs `produce` only and extracts the `anomalies` slot.
pub struct Pipeline {
    name: String,
    steps: Vec<Box<dyn Primitive>>,
    fitted: bool,
    profile: PipelineProfile,
}

impl Pipeline {
    /// Assemble from instantiated primitives (usually via
    /// [`crate::Template::build`]).
    pub fn new(name: &str, steps: Vec<Box<dyn Primitive>>) -> Self {
        Self { name: name.to_string(), steps, fitted: false, profile: PipelineProfile::default() }
    }

    /// Pipeline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether `fit` has completed.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Primitive names, pipeline order.
    pub fn step_names(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.meta().name.as_str()).collect()
    }

    /// Profiling data of the most recent fit/detect run.
    pub fn profile(&self) -> &PipelineProfile {
        &self.profile
    }

    /// Execute the pipeline over a signal.
    ///
    /// All timing is span-based (see `sintel-obs`): the whole run is one
    /// span and every primitive `fit`/`produce` is a child span, so the
    /// per-step numbers in [`PipelineProfile`] and the exported trace
    /// come from the same clock and `primitive_time() <= total_time()`
    /// holds by construction.
    fn run(&mut self, signal: &Signal, do_fit: bool) -> Result<Context> {
        self.run_mode(signal, do_fit, false)
    }

    fn run_mode(&mut self, signal: &Signal, do_fit: bool, incremental: bool) -> Result<Context> {
        let mut ctx = Context::from_signal(signal.clone());
        if do_fit {
            self.profile = PipelineProfile::default();
        }
        let run_span = sintel_obs::span_with(
            match (do_fit, incremental) {
                (true, _) => "pipeline.fit",
                (false, false) => "pipeline.produce",
                (false, true) => "pipeline.update",
            },
            &[("pipeline", FieldValue::from(self.name.as_str()))],
        );
        for step in &mut self.steps {
            let meta_name = step.meta().name.clone();
            let engine = step.meta().engine;
            #[cfg(feature = "sanitizer")]
            let contract = step.meta().contract.clone();
            let mut fit_time = std::time::Duration::ZERO;
            if do_fit {
                // A failing step returns early; its span guard drops,
                // which closes the span, so the trace stays balanced.
                let fit_span = sintel_obs::span_with(
                    "primitive.fit",
                    &[
                        ("primitive", FieldValue::from(meta_name.as_str())),
                        ("engine", FieldValue::from(engine.to_string())),
                    ],
                );
                // Drain stale log entries so accesses attribute to this
                // step's fit alone.
                #[cfg(feature = "sanitizer")]
                drop(ctx.sanitizer_take_reads());
                catch_unwind(AssertUnwindSafe(|| step.fit(&ctx)))
                    .map_err(|payload| PipelineError::PrimitivePanic {
                        step: meta_name.clone(),
                        message: panic_message(payload),
                    })?
                    .map_err(|e| PipelineError::Step {
                        step: meta_name.clone(),
                        source: e.to_string(),
                    })?;
                #[cfg(feature = "sanitizer")]
                sanitize_reads(&contract, &meta_name, "fit", ctx.sanitizer_take_reads())?;
                fit_time = fit_span.close();
                sintel_obs::observe_duration("sintel_primitive_fit_seconds", fit_time);
            }
            let produce_span = sintel_obs::span_with(
                if incremental { "primitive.update" } else { "primitive.produce" },
                &[
                    ("primitive", FieldValue::from(meta_name.as_str())),
                    ("engine", FieldValue::from(engine.to_string())),
                ],
            );
            #[cfg(feature = "sanitizer")]
            drop(ctx.sanitizer_take_reads());
            let outputs = catch_unwind(AssertUnwindSafe(|| {
                if incremental {
                    step.update(&ctx)
                } else {
                    step.produce(&ctx)
                }
            }))
                .map_err(|payload| PipelineError::PrimitivePanic {
                    step: meta_name.clone(),
                    message: panic_message(payload),
                })?
                .map_err(|e| PipelineError::Step {
                    step: meta_name.clone(),
                    source: e.to_string(),
                })?;
            #[cfg(feature = "sanitizer")]
            {
                let phase = if incremental { "update" } else { "produce" };
                sanitize_reads(&contract, &meta_name, phase, ctx.sanitizer_take_reads())?;
                sanitize_writes(&contract, &meta_name, phase, &outputs)?;
            }
            let produce_time = produce_span.close();
            sintel_obs::observe_duration("sintel_primitive_produce_seconds", produce_time);
            // Inter-step output guard: NaN/Inf leaving a modeling or
            // postprocessing primitive would silently poison thresholding
            // downstream, so reject it here. Preprocessing is exempt —
            // time_segments_aggregate legitimately materialises gaps as NaN
            // for SimpleImputer to fill.
            if engine != Engine::Preprocessing {
                for (_, value) in &outputs {
                    if !value_is_finite(value) {
                        return Err(PipelineError::NonFinite { step: meta_name.clone() });
                    }
                }
            }
            for (slot, value) in outputs {
                ctx.set(slot, value);
            }
            if do_fit {
                self.profile.steps.push(StepProfile {
                    primitive: meta_name,
                    engine,
                    fit_time,
                    produce_time,
                });
            } else if let Some(rec) =
                self.profile.steps.iter_mut().find(|s| s.primitive == meta_name)
            {
                rec.produce_time += produce_time;
            }
        }
        // The run span encloses every step span on the same clock, so
        // the profile totals and the per-step times cannot disagree
        // (the Figure 7b overhead delta is computed from one clock).
        let run_time = run_span.close();
        if do_fit {
            self.profile.fit_total = run_time;
            sintel_obs::observe_duration("sintel_pipeline_fit_seconds", run_time);
        } else {
            self.profile.detect_total += run_time;
            sintel_obs::observe_duration("sintel_pipeline_detect_seconds", run_time);
        }
        self.profile.debug_assert_consistent();
        Ok(ctx)
    }

    /// Train the pipeline end-to-end on a signal (Figure 4a:
    /// `sintel.fit(train_data)`).
    pub fn fit(&mut self, signal: &Signal) -> Result<()> {
        self.run(signal, true)?;
        self.fitted = true;
        Ok(())
    }

    /// Detect anomalies in (new) data (Figure 4a:
    /// `sintel.detect(new_data)`). Returns scored intervals in timestamp
    /// space.
    pub fn detect(&mut self, signal: &Signal) -> Result<Vec<ScoredInterval>> {
        if !self.fitted {
            return Err(PipelineError::NotFitted(self.name.clone()));
        }
        let ctx = self.run(signal, false)?;
        match ctx.get("anomalies") {
            Some(Value::Intervals(anoms)) => Ok(anoms.clone()),
            _ => Err(PipelineError::Step {
                step: self.name.clone(),
                source: "pipeline produced no 'anomalies' slot".into(),
            }),
        }
    }

    /// Detect anomalies through the incremental (`update`) path — the
    /// serving tier's per-chunk entry point. Every step's
    /// [`Primitive::update`] runs instead of `produce`; the default
    /// `update` falls back to batch `produce` over the buffered window,
    /// so for stock primitives this is bitwise-identical to
    /// [`Pipeline::detect`] (enforced by the streaming purity test).
    pub fn detect_incremental(&mut self, signal: &Signal) -> Result<Vec<ScoredInterval>> {
        if !self.fitted {
            return Err(PipelineError::NotFitted(self.name.clone()));
        }
        let ctx = self.run_mode(signal, false, true)?;
        match ctx.get("anomalies") {
            Some(Value::Intervals(anoms)) => Ok(anoms.clone()),
            _ => Err(PipelineError::Step {
                step: self.name.clone(),
                source: "pipeline produced no 'anomalies' slot".into(),
            }),
        }
    }

    /// Convenience: fit on `train` then detect on `test`.
    pub fn fit_detect(
        &mut self,
        train: &Signal,
        test: &Signal,
    ) -> Result<Vec<ScoredInterval>> {
        self.fit(train)?;
        self.detect(test)
    }

    /// Run the pipeline *up to* (excluding) the postprocessing threshold
    /// stage and return the error series and timestamps — the signal-fit
    /// view the unsupervised tuner optimises (Figure 5, setting 1).
    pub fn errors(&mut self, signal: &Signal) -> Result<(Vec<f64>, Vec<i64>)> {
        if !self.fitted {
            return Err(PipelineError::NotFitted(self.name.clone()));
        }
        let ctx = self.run(signal, false)?;
        let errors = ctx
            .series("errors")
            .map_err(|e| PipelineError::Step { step: self.name.clone(), source: e.to_string() })?
            .clone();
        let ts = ctx
            .timestamps("error_timestamps")
            .map_err(|e| PipelineError::Step { step: self.name.clone(), source: e.to_string() })?
            .clone();
        Ok((errors, ts))
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("name", &self.name)
            .field("steps", &self.step_names())
            .field("fitted", &self.fitted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{StepSpec, Template};
    use sintel_primitives::HyperValue;

    /// A fast end-to-end template (ARIMA based) for executor tests.
    fn fast_template() -> Template {
        Template {
            name: "test_arima".into(),
            steps: vec![
                StepSpec::plain("time_segments_aggregate"),
                StepSpec::plain("SimpleImputer"),
                StepSpec::plain("MinMaxScaler"),
                StepSpec::with("arima", &[("p", HyperValue::Int(3)), ("q", HyperValue::Int(0))]),
                StepSpec::plain("regression_errors"),
                StepSpec::plain("find_anomalies"),
            ],
        }
    }

    fn spiky_signal(n: usize) -> Signal {
        let mut vals: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 40.0).sin()).collect();
        for v in vals.iter_mut().skip(n / 2).take(6) {
            *v += 5.0;
        }
        Signal::from_values("spiky", vals)
    }

    #[test]
    fn fit_detect_finds_injected_spike() {
        let mut pipeline = fast_template().build_default().unwrap();
        let clean = Signal::from_values(
            "clean",
            (0..400).map(|t| (std::f64::consts::TAU * t as f64 / 40.0).sin()).collect(),
        );
        let test = spiky_signal(400);
        let anomalies = pipeline.fit_detect(&clean, &test).unwrap();
        assert!(!anomalies.is_empty(), "spike not detected");
        // The detection covers the injected region (timestamps == indices).
        assert!(
            anomalies.iter().any(|a| a.interval.start >= 180 && a.interval.start <= 215),
            "{anomalies:?}"
        );
    }

    #[test]
    fn detect_before_fit_errors() {
        let mut pipeline = fast_template().build_default().unwrap();
        let s = spiky_signal(100);
        assert!(matches!(pipeline.detect(&s), Err(PipelineError::NotFitted(_))));
        assert!(matches!(pipeline.errors(&s), Err(PipelineError::NotFitted(_))));
    }

    #[test]
    fn profile_populated_after_run() {
        let mut pipeline = fast_template().build_default().unwrap();
        let s = spiky_signal(400);
        pipeline.fit(&s).unwrap();
        pipeline.detect(&s).unwrap();
        let prof = pipeline.profile();
        assert_eq!(prof.steps.len(), 6);
        assert!(prof.fit_total > std::time::Duration::ZERO);
        assert!(prof.detect_total > std::time::Duration::ZERO);
        assert!(prof.total_time() >= prof.primitive_time());
    }

    /// Regression: repeated `detect`/`errors` calls accumulate both the
    /// per-step produce times and `detect_total` from the same clock,
    /// so the primitives' own time can never exceed the wall-clock
    /// (the old code overwrote `detect_total` while accumulating
    /// produce times, double-counting the Figure 7b overhead delta).
    #[test]
    fn repeated_runs_keep_profile_consistent() {
        let mut pipeline = fast_template().build_default().unwrap();
        let s = spiky_signal(400);
        pipeline.fit(&s).unwrap();
        for _ in 0..3 {
            pipeline.detect(&s).unwrap();
        }
        pipeline.errors(&s).unwrap();
        let prof = pipeline.profile();
        assert!(
            prof.primitive_time() <= prof.total_time(),
            "primitive {:?} > total {:?}",
            prof.primitive_time(),
            prof.total_time()
        );
        // detect_total accumulated across all four produce-only runs.
        assert!(prof.detect_total > std::time::Duration::ZERO);
    }

    /// The default `update` falls back to `produce`, so the incremental
    /// path must match batch detection bitwise for stock primitives.
    #[test]
    fn detect_incremental_matches_batch_bitwise() {
        let mut pipeline = fast_template().build_default().unwrap();
        let s = spiky_signal(400);
        pipeline.fit(&s).unwrap();
        let batch = pipeline.detect(&s).unwrap();
        let incremental = pipeline.detect_incremental(&s).unwrap();
        assert_eq!(batch.len(), incremental.len());
        for (a, b) in batch.iter().zip(&incremental) {
            assert_eq!(a.interval.start, b.interval.start);
            assert_eq!(a.interval.end, b.interval.end);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert!(matches!(
            fast_template().build_default().unwrap().detect_incremental(&s),
            Err(PipelineError::NotFitted(_))
        ));
    }

    #[test]
    fn errors_view_exposes_series() {
        let mut pipeline = fast_template().build_default().unwrap();
        let s = spiky_signal(400);
        pipeline.fit(&s).unwrap();
        let (errors, ts) = pipeline.errors(&s).unwrap();
        assert_eq!(errors.len(), ts.len());
        assert!(!errors.is_empty());
    }

    #[test]
    fn step_names_in_order() {
        let pipeline = fast_template().build_default().unwrap();
        assert_eq!(
            pipeline.step_names(),
            vec![
                "time_segments_aggregate",
                "SimpleImputer",
                "MinMaxScaler",
                "arima",
                "regression_errors",
                "find_anomalies"
            ]
        );
    }
}

//! Per-primitive execution profiling (powers Figures 7a/7b).
//!
//! Since the observability PR, every number here is a **view over the
//! `sintel-obs` span records** of the run: `fit_total`/`detect_total`
//! are the durations of the enclosing `pipeline.fit`/`pipeline.produce`
//! spans and each [`StepProfile`] time is the duration of the
//! corresponding `primitive.*` child span. Because children nest
//! strictly inside their parent on one monotonic clock,
//! `primitive_time() <= total_time()` holds by construction — there is
//! no second hand-rolled timer that could drift or double-count.

use std::time::Duration;

use sintel_primitives::Engine;

/// Timing record for one primitive within one pipeline run.
#[derive(Debug, Clone)]
pub struct StepProfile {
    /// Primitive name.
    pub primitive: String,
    /// Engine category.
    pub engine: Engine,
    /// Time spent in `fit` (zero if the phase did not run).
    pub fit_time: Duration,
    /// Time spent in `produce`.
    pub produce_time: Duration,
}

/// Profiling summary of a full pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineProfile {
    /// Per-step records, pipeline order.
    pub steps: Vec<StepProfile>,
    /// Wall-clock time of the whole `fit` run (including framework
    /// overhead between primitives): the `pipeline.fit` span duration.
    pub fit_total: Duration,
    /// Accumulated wall-clock time of every produce-only run since the
    /// last `fit` (`detect` and `errors` calls) — it accumulates in
    /// lock-step with the steps' `produce_time`, so repeated detects
    /// cannot push `primitive_time()` past `total_time()`.
    pub detect_total: Duration,
}

impl PipelineProfile {
    /// Sum of the primitives' own fit+produce time (the "standalone"
    /// baseline of Figure 7b).
    pub fn primitive_time(&self) -> Duration {
        self.steps.iter().map(|s| s.fit_time + s.produce_time).sum()
    }

    /// End-to-end wall-clock (fit + detect).
    pub fn total_time(&self) -> Duration {
        self.fit_total + self.detect_total
    }

    /// Framework overhead: end-to-end wall-clock minus the primitives'
    /// own time (what Figure 7b reports as the delta).
    pub fn overhead(&self) -> Duration {
        self.total_time().saturating_sub(self.primitive_time())
    }

    /// Overhead as a percentage of the primitives' own time.
    pub fn overhead_percent(&self) -> f64 {
        let prim = self.primitive_time().as_secs_f64();
        if prim <= 0.0 {
            return 0.0;
        }
        100.0 * self.overhead().as_secs_f64() / prim
    }

    /// Debug-assert the single-clock invariant: the primitives' own
    /// time can never exceed the end-to-end wall-clock they ran inside.
    pub fn debug_assert_consistent(&self) {
        debug_assert!(
            self.primitive_time() <= self.total_time(),
            "profile double-counting: primitive_time {:?} > total_time {:?}",
            self.primitive_time(),
            self.total_time()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(fit_ms: u64, produce_ms: u64, totals: (u64, u64)) -> PipelineProfile {
        PipelineProfile {
            steps: vec![StepProfile {
                primitive: "p".into(),
                engine: Engine::Modeling,
                fit_time: Duration::from_millis(fit_ms),
                produce_time: Duration::from_millis(produce_ms),
            }],
            fit_total: Duration::from_millis(totals.0),
            detect_total: Duration::from_millis(totals.1),
        }
    }

    #[test]
    fn overhead_accounting() {
        let p = profile(100, 50, (120, 60));
        assert_eq!(p.primitive_time(), Duration::from_millis(150));
        assert_eq!(p.total_time(), Duration::from_millis(180));
        assert_eq!(p.overhead(), Duration::from_millis(30));
        assert!((p.overhead_percent() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_primitive_time_is_safe() {
        let p = profile(0, 0, (0, 0));
        assert_eq!(p.overhead_percent(), 0.0);
    }

    #[test]
    fn overhead_never_negative() {
        // Wall clock below primitive sum (clock skew) saturates at zero.
        let p = profile(100, 100, (50, 50));
        assert_eq!(p.overhead(), Duration::ZERO);
    }
}

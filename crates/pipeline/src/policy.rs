//! Fault-isolated execution policy: watchdogs, retries and failure
//! taxonomy.
//!
//! A benchmark sweep, a tuning search or a long-running serving tier
//! runs hundreds of pipeline executions; one pathological primitive
//! must not take the whole run down (hang it, poison its scores, or
//! kill the process). This module is the single choke point every
//! caller routes pipeline executions through:
//!
//! * [`RunPolicy`] — how long a run may take, how often it is retried
//!   and how long to back off between attempts;
//! * [`run_guarded`] — one attempt on a watchdog thread: panics are
//!   contained, and a run that exceeds the budget is abandoned and
//!   reported as a timeout. The abandoned worker is *cooperatively
//!   cancelled*: a [`sintel_common::CancelToken`] is installed on the
//!   worker thread and tripped at timeout, and primitive hot loops
//!   (LSTM epochs, ARIMA recursions, rolling windows) poll
//!   [`sintel_common::cancelled`] so the thread actually winds down
//!   instead of leaking until process exit;
//! * [`run_with_policy`] — retry loop over [`run_guarded`];
//! * [`FailureKind`] / [`FailureBreakdown`] — the typed failure
//!   taxonomy replacing anonymous failure counters, so benchmark rows
//!   can report *why* signals failed, not just how many.
//!
//! This module lives in `sintel-pipeline` (it classifies
//! [`PipelineError`]s and guards pipeline executions) and is re-exported
//! as `sintel::policy` for the framework-core callers.

use std::sync::mpsc;
use std::time::Duration;

use sintel_common::CancelToken;

use crate::PipelineError;

/// Execution budget for one pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunPolicy {
    /// Wall-clock budget per attempt; exceeding it abandons the attempt
    /// as a [`FailureKind::Timeout`].
    pub timeout: Duration,
    /// Additional attempts after the first failure.
    pub max_retries: u32,
    /// Pause between attempts.
    pub backoff: Duration,
}

impl Default for RunPolicy {
    /// The documented defaults: 60 s per attempt, one retry, 100 ms
    /// backoff.
    fn default() -> Self {
        Self { timeout: Duration::from_secs(60), max_retries: 1, backoff: Duration::from_millis(100) }
    }
}

impl RunPolicy {
    /// A policy for interactive/tuning trials: same timeout, no
    /// retries (a failed trial is informative, not worth repeating).
    pub fn single_attempt(timeout: Duration) -> Self {
        Self { timeout, max_retries: 0, backoff: Duration::ZERO }
    }
}

/// Why a run failed — the benchmark's failure taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The pipeline could not even be constructed.
    Build,
    /// A primitive panicked (contained by the executor or the watchdog).
    Panic,
    /// A primitive emitted NaN/infinite output.
    NonFinite,
    /// The attempt exceeded [`RunPolicy::timeout`].
    Timeout,
    /// The configuration was refused by the static analyzer before any
    /// execution (`sintel-analyze` Error-level diagnostics) — a skipped
    /// trial/row, not a crash.
    Rejected,
    /// Any other typed error.
    Other,
}

impl FailureKind {
    /// Every failure class, for pre-registering metrics so a clean run
    /// still dumps explicit zero counters.
    pub const ALL: [FailureKind; 6] = [
        FailureKind::Build,
        FailureKind::Panic,
        FailureKind::NonFinite,
        FailureKind::Timeout,
        FailureKind::Rejected,
        FailureKind::Other,
    ];

    /// Short stable label (used in the knowledge base).
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Build => "build",
            FailureKind::Panic => "panic",
            FailureKind::NonFinite => "non_finite",
            FailureKind::Timeout => "timeout",
            FailureKind::Rejected => "rejected",
            FailureKind::Other => "other",
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A classified failure with its human-readable cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Failure class.
    pub kind: FailureKind,
    /// Underlying error message.
    pub message: String,
}

impl Failure {
    /// Construct a failure.
    pub fn new(kind: FailureKind, message: impl Into<String>) -> Self {
        Self { kind, message: message.into() }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// Classify a pipeline error into the failure taxonomy.
pub fn classify_pipeline_error(e: &PipelineError) -> FailureKind {
    match e {
        PipelineError::UnknownPipeline(_) | PipelineError::BadTemplate { .. } => {
            FailureKind::Build
        }
        PipelineError::PrimitivePanic { .. } => FailureKind::Panic,
        PipelineError::NonFinite { .. } => FailureKind::NonFinite,
        PipelineError::Step { .. } | PipelineError::NotFitted(_) => FailureKind::Other,
        // A sanitizer finding is a defect in the primitive's declaration,
        // not in the data — keep it out of the data-driven classes so
        // breaker/degradation statistics stay meaningful under test runs.
        #[cfg(feature = "sanitizer")]
        PipelineError::ContractViolation { .. } => FailureKind::Other,
    }
}

/// Per-class failure counts for one benchmark row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureBreakdown {
    /// Pipeline construction failures.
    pub build: usize,
    /// Contained primitive panics.
    pub panic: usize,
    /// Non-finite output rejections.
    pub non_finite: usize,
    /// Watchdog timeouts.
    pub timeout: usize,
    /// Analyzer rejections (never executed).
    pub rejected: usize,
    /// Everything else.
    pub other: usize,
}

impl FailureBreakdown {
    /// Total failures across all classes.
    pub fn total(&self) -> usize {
        self.build + self.panic + self.non_finite + self.timeout + self.rejected + self.other
    }

    /// Record one failure of the given class.
    pub fn record(&mut self, kind: FailureKind) {
        match kind {
            FailureKind::Build => self.build += 1,
            FailureKind::Panic => self.panic += 1,
            FailureKind::NonFinite => self.non_finite += 1,
            FailureKind::Timeout => self.timeout += 1,
            FailureKind::Rejected => self.rejected += 1,
            FailureKind::Other => self.other += 1,
        }
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &FailureBreakdown) {
        self.build += other.build;
        self.panic += other.panic;
        self.non_finite += other.non_finite;
        self.timeout += other.timeout;
        self.rejected += other.rejected;
        self.other += other.other;
    }

    /// Compact `class×count` rendering (`-` when clean), e.g.
    /// `panic×2 timeout×1`.
    pub fn summary(&self) -> String {
        if self.total() == 0 {
            return "-".to_string();
        }
        let mut parts = Vec::new();
        for (label, count) in [
            ("build", self.build),
            ("panic", self.panic),
            ("nan", self.non_finite),
            ("timeout", self.timeout),
            ("rejected", self.rejected),
            ("other", self.other),
        ] {
            if count > 0 {
                parts.push(format!("{label}\u{d7}{count}"));
            }
        }
        parts.join(" ")
    }
}

impl std::fmt::Display for FailureBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Outcome of one guarded attempt.
#[derive(Debug)]
pub enum GuardedResult<T> {
    /// The task ran to completion (it may still have returned an error).
    Done(T),
    /// The task panicked; the payload message is preserved.
    Panicked(String),
    /// The task exceeded the budget; its cancel token was tripped and
    /// the thread abandoned (it winds down at the next cancellation
    /// poll in a primitive hot loop).
    TimedOut,
}

fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Run one attempt on a watchdog thread with a wall-clock budget.
///
/// The task runs on its own thread; this call blocks at most `timeout`.
/// If the task finishes in time its value is returned; if it panics the
/// unwind is contained. If it hangs, the attempt reports
/// [`GuardedResult::TimedOut`] and the worker's [`CancelToken`] is
/// tripped: Rust threads cannot be killed, but primitive hot loops poll
/// [`sintel_common::cancelled`] and abandon their work, so a timed-out
/// worker terminates shortly after instead of leaking until it finishes
/// naturally (or the process exits).
pub fn run_guarded<T, F>(timeout: Duration, task: F) -> GuardedResult<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let token = CancelToken::new();
    let worker_token = token.clone();
    let spawned = std::thread::Builder::new()
        .name("sintel-watchdog-run".to_string())
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sintel_common::with_cancel_token(worker_token, task)
            }));
            // The receiver may be gone already (timeout) — ignore.
            let _ = tx.send(result);
        });
    if spawned.is_err() {
        return GuardedResult::TimedOut;
    }
    match rx.recv_timeout(timeout) {
        Ok(Ok(value)) => GuardedResult::Done(value),
        Ok(Err(payload)) => GuardedResult::Panicked(panic_payload_message(payload)),
        Err(_) => {
            token.cancel();
            GuardedResult::TimedOut
        }
    }
}

/// Run a fallible attempt under the full policy: watchdog per attempt,
/// up to `1 + max_retries` attempts with backoff in between.
///
/// Returns the first success, or the *last* failure, plus the number of
/// attempts actually made (quarantine logic counts these as strikes).
///
/// Observability: every attempt increments `sintel_run_attempts_total`,
/// every retry `sintel_run_retries_total`, and every failed attempt
/// `sintel_run_failures_total{kind=…}`; failures and backoffs are
/// logged as structured `sintel::policy` events.
pub fn run_with_policy<T, F>(
    policy: &RunPolicy,
    attempt: F,
) -> (std::result::Result<T, Failure>, u32)
where
    T: Send + 'static,
    F: Fn() -> std::result::Result<T, Failure> + Send + Clone + 'static,
{
    const TARGET: &str = "sintel::policy";
    let mut last = Failure::new(FailureKind::Other, "no attempt was made");
    let mut attempts = 0u32;
    for round in 0..=policy.max_retries {
        if round > 0 {
            sintel_obs::counter_add("sintel_run_retries_total", 1);
            sintel_obs::debug!(
                TARGET,
                "retrying after failure",
                attempt = round + 1,
                backoff_seconds = policy.backoff,
                last_kind = last.kind.label(),
            );
            if !policy.backoff.is_zero() {
                std::thread::sleep(policy.backoff);
            }
        }
        attempts += 1;
        sintel_obs::counter_add("sintel_run_attempts_total", 1);
        let failure = match run_guarded(policy.timeout, attempt.clone()) {
            GuardedResult::Done(Ok(value)) => return (Ok(value), attempts),
            GuardedResult::Done(Err(failure)) => failure,
            GuardedResult::Panicked(message) => Failure::new(FailureKind::Panic, message),
            GuardedResult::TimedOut => Failure::new(
                FailureKind::Timeout,
                format!("exceeded the {:?} run budget", policy.timeout),
            ),
        };
        sintel_obs::counter_add(
            &sintel_obs::labeled("sintel_run_failures_total", &[("kind", failure.kind.label())]),
            1,
        );
        sintel_obs::warn!(
            TARGET,
            format!("attempt failed: {}", failure.message),
            kind = failure.kind.label(),
            attempt = attempts,
            retries_left = policy.max_retries - round,
        );
        last = failure;
    }
    (Err(last), attempts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn guarded_run_returns_value() {
        match run_guarded(Duration::from_secs(5), || 41 + 1) {
            GuardedResult::Done(v) => assert_eq!(v, 42),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn guarded_run_contains_panics() {
        match run_guarded(Duration::from_secs(5), || -> u32 { panic!("boom") }) {
            GuardedResult::Panicked(msg) => assert!(msg.contains("boom")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn guarded_run_times_out_hung_tasks() {
        let result = run_guarded(Duration::from_millis(50), || {
            std::thread::sleep(Duration::from_millis(800));
            1u32
        });
        assert!(matches!(result, GuardedResult::TimedOut));
    }

    /// The leak fix: a timed-out worker that polls `cancelled()` stops
    /// promptly instead of running to its natural end.
    #[test]
    fn timed_out_worker_observes_cancellation() {
        let stopped = Arc::new(AtomicUsize::new(0));
        let seen = stopped.clone();
        let result = run_guarded(Duration::from_millis(30), move || {
            let t0 = std::time::Instant::now();
            while !sintel_common::cancelled() {
                if t0.elapsed() > Duration::from_secs(20) {
                    return false; // would be the old leak path
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            seen.fetch_add(1, Ordering::SeqCst);
            true
        });
        assert!(matches!(result, GuardedResult::TimedOut));
        // Give the abandoned worker a moment to poll the tripped token.
        let t0 = std::time::Instant::now();
        while stopped.load(Ordering::SeqCst) == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(stopped.load(Ordering::SeqCst), 1, "worker never saw the cancel");
    }

    #[test]
    fn policy_retries_until_success() {
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = calls.clone();
        let policy = RunPolicy {
            timeout: Duration::from_secs(5),
            max_retries: 2,
            backoff: Duration::from_millis(1),
        };
        let (result, attempts) = run_with_policy(&policy, move || {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(Failure::new(FailureKind::Other, "flaky"))
            } else {
                Ok(7u32)
            }
        });
        assert_eq!(result.unwrap(), 7);
        assert_eq!(attempts, 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn policy_reports_last_failure_and_attempt_count() {
        let policy = RunPolicy {
            timeout: Duration::from_secs(5),
            max_retries: 1,
            backoff: Duration::ZERO,
        };
        let (result, attempts) = run_with_policy(&policy, || -> Result<(), Failure> {
            Err(Failure::new(FailureKind::NonFinite, "nan output"))
        });
        let failure = result.unwrap_err();
        assert_eq!(failure.kind, FailureKind::NonFinite);
        assert_eq!(attempts, 2);
    }

    #[test]
    fn breakdown_records_and_merges() {
        let mut a = FailureBreakdown::default();
        a.record(FailureKind::Panic);
        a.record(FailureKind::Timeout);
        let mut b = FailureBreakdown::default();
        b.record(FailureKind::Panic);
        b.merge(&a);
        assert_eq!(b.panic, 2);
        assert_eq!(b.timeout, 1);
        assert_eq!(b.total(), 3);
        assert!(b.summary().contains("panic"));
        assert_eq!(FailureBreakdown::default().summary(), "-");
    }

    #[test]
    fn pipeline_errors_classify_per_variant() {
        use crate::PipelineError as E;
        assert_eq!(
            classify_pipeline_error(&E::BadTemplate {
                code: "SA001".into(),
                step: "s".into(),
                message: "x".into(),
            }),
            FailureKind::Build
        );
        assert_eq!(
            classify_pipeline_error(&E::PrimitivePanic { step: "s".into(), message: "m".into() }),
            FailureKind::Panic
        );
        assert_eq!(
            classify_pipeline_error(&E::NonFinite { step: "s".into() }),
            FailureKind::NonFinite
        );
        assert_eq!(
            classify_pipeline_error(&E::Step { step: "s".into(), source: "e".into() }),
            FailureKind::Other
        );
    }
}

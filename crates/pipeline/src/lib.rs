#![warn(missing_docs)]

//! # sintel-pipeline
//!
//! Templates, pipelines and the pipeline hub (paper §2.2 and §3.2).
//!
//! * A [`Template`] is ⟨V, E, Λ⟩: an ordered list of primitive steps
//!   (the edges are the implicit context data-flow) together with the
//!   *joint hyperparameter space* Λ collected from the primitives'
//!   declarations.
//! * A [`Pipeline`] is a configured template ⟨V, E, λ⟩ — concrete
//!   primitive instances with fixed hyperparameters — exposing the
//!   `fit` / `detect` lifecycle of Figure 4a.
//! * The [`hub`] stores the named end-to-end anomaly detection pipelines
//!   of the evaluation: `lstm_dynamic_threshold`, `arima`,
//!   `lstm_autoencoder`, `dense_autoencoder`, `tadgan` and
//!   `azure_anomaly_detection`.
//!
//! Execution is instrumented per primitive ([`profile::StepProfile`]),
//! which powers the computational-performance benchmark (Figure 7a) and
//! the primitive-overhead experiment (Figure 7b).
//!
//! The [`policy`] module is the fault-isolation layer every runner
//! (benchmark, tuner, serving tier) routes executions through:
//! [`RunPolicy`] budgets, the cancel-aware watchdog [`run_guarded`],
//! and the [`FailureKind`] taxonomy. It is re-exported as
//! `sintel::policy` for framework-core callers.

pub mod hub;
pub mod pipeline;
pub mod policy;
pub mod profile;
pub mod template;

pub use hub::{available_pipelines, build_pipeline, template_by_name};
pub use pipeline::Pipeline;
pub use policy::{
    classify_pipeline_error, run_guarded, run_with_policy, Failure, FailureBreakdown,
    FailureKind, GuardedResult, RunPolicy,
};
pub use profile::{PipelineProfile, StepProfile};
pub use template::{ParamId, StepSpec, Template};

/// Errors produced at the pipeline layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Unknown pipeline/template name.
    UnknownPipeline(String),
    /// A primitive failed.
    Step {
        /// Name of the failing primitive.
        step: String,
        /// Underlying error message.
        source: String,
    },
    /// The pipeline was used before `fit`.
    NotFitted(String),
    /// Structural problem in a template, refused before execution. Carries
    /// the static-analysis diagnostic that rejected it (`sintel-analyze`
    /// code such as `SA001`) and the offending step's primitive name.
    BadTemplate {
        /// Diagnostic code (`SA000`…`SA005`).
        code: String,
        /// Primitive name of the offending step.
        step: String,
        /// Full human-readable message.
        message: String,
    },
    /// A primitive panicked; the executor contained the unwind.
    PrimitivePanic {
        /// Name of the panicking primitive.
        step: String,
        /// The panic payload (when it was a string).
        message: String,
    },
    /// A modeling/postprocessing primitive emitted NaN or infinite values.
    NonFinite {
        /// Name of the primitive whose output failed the finiteness guard.
        step: String,
    },
    /// The contract sanitizer (cargo feature `sanitizer`) caught a
    /// primitive accessing a context slot its declared
    /// [`Contract`](sintel_primitives::Contract) omits — the runtime
    /// counterpart of the static SA0xx diagnostics.
    #[cfg(feature = "sanitizer")]
    ContractViolation {
        /// Name of the offending primitive.
        step: String,
        /// Lifecycle phase (`"fit"` / `"produce"` / `"update"`).
        phase: String,
        /// Access direction (`"read"` / `"write"`).
        access: String,
        /// The undeclared context slot.
        slot: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::UnknownPipeline(n) => write!(f, "unknown pipeline '{n}'"),
            PipelineError::Step { step, source } => {
                write!(f, "primitive '{step}' failed: {source}")
            }
            PipelineError::NotFitted(n) => write!(f, "pipeline '{n}' is not fitted"),
            // Display stays `bad template: {message}` — the structured
            // fields add detail without breaking message-matching callers.
            PipelineError::BadTemplate { message, .. } => write!(f, "bad template: {message}"),
            PipelineError::PrimitivePanic { step, message } => {
                write!(f, "primitive '{step}' panicked: {message}")
            }
            PipelineError::NonFinite { step } => {
                write!(f, "primitive '{step}' produced non-finite output")
            }
            #[cfg(feature = "sanitizer")]
            PipelineError::ContractViolation { step, phase, access, slot } => {
                write!(
                    f,
                    "[SA009] contract violation: primitive '{step}' {access}s \
                     undeclared slot '{slot}' during {phase}"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, PipelineError>;

//! Templates: ⟨V, E, Λ⟩ (paper §3.2).

use sintel_primitives::{build_primitive, HyperSpec, HyperValue};

use crate::pipeline::Pipeline;
use crate::{PipelineError, Result};

/// One step of a template: a primitive name plus fixed hyperparameter
/// overrides applied at build time.
#[derive(Debug, Clone)]
pub struct StepSpec {
    /// Registry name of the primitive.
    pub primitive: String,
    /// Fixed hyperparameter overrides `(name, value)`.
    pub overrides: Vec<(String, HyperValue)>,
}

impl StepSpec {
    /// A step with no overrides.
    pub fn plain(primitive: &str) -> Self {
        Self { primitive: primitive.to_string(), overrides: Vec::new() }
    }

    /// A step with overrides.
    pub fn with(primitive: &str, overrides: &[(&str, HyperValue)]) -> Self {
        Self {
            primitive: primitive.to_string(),
            overrides: overrides.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        }
    }
}

/// Identifies one hyperparameter within a template's joint space Λ:
/// `(step index, hyperparameter name)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamId {
    /// Step index within the template.
    pub step: usize,
    /// Hyperparameter name within the primitive.
    pub name: String,
}

impl std::fmt::Display for ParamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step{}#{}", self.step, self.name)
    }
}

/// A pipeline template: named, ordered primitive steps.
///
/// ```
/// use sintel_pipeline::Template;
///
/// let template = Template::from_names(
///     "my_detector",
///     &["time_segments_aggregate", "SimpleImputer", "MinMaxScaler",
///       "arima", "regression_errors", "find_anomalies"],
/// );
/// // The joint tunable hyperparameter space Λ is collected from the
/// // primitives' declarations.
/// assert!(!template.hyperparameter_space().unwrap().is_empty());
/// let pipeline = template.build_default().unwrap();
/// assert_eq!(pipeline.name(), "my_detector");
/// ```
#[derive(Debug, Clone)]
pub struct Template {
    /// Template name (doubles as pipeline name when built).
    pub name: String,
    /// Ordered steps.
    pub steps: Vec<StepSpec>,
}

impl Template {
    /// Create a template from plain primitive names.
    pub fn from_names(name: &str, primitives: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            steps: primitives.iter().map(|p| StepSpec::plain(p)).collect(),
        }
    }

    /// The joint *tunable* hyperparameter space Λ: every tunable spec of
    /// every step, addressed by [`ParamId`]. Fixed overrides and
    /// `tunable = false` specs are excluded.
    pub fn hyperparameter_space(&self) -> Result<Vec<(ParamId, HyperSpec)>> {
        let mut space = Vec::new();
        for (idx, step) in self.steps.iter().enumerate() {
            let prim = build_primitive(&step.primitive).map_err(|e| {
                PipelineError::BadTemplate {
                    code: "SA000".to_string(),
                    step: step.primitive.clone(),
                    message: e.to_string(),
                }
            })?;
            for spec in &prim.meta().hyperparams {
                let overridden = step.overrides.iter().any(|(n, _)| n == &spec.name);
                if spec.tunable && !overridden {
                    space.push((
                        ParamId { step: idx, name: spec.name.clone() },
                        spec.clone(),
                    ));
                }
            }
        }
        Ok(space)
    }

    /// Build the pipeline with the template's fixed overrides plus the
    /// extra configuration λ (typically proposed by the tuner).
    pub fn build(&self, lambda: &[(ParamId, HyperValue)]) -> Result<Pipeline> {
        let mut steps = Vec::with_capacity(self.steps.len());
        for (idx, spec) in self.steps.iter().enumerate() {
            let mut prim = build_primitive(&spec.primitive).map_err(|e| {
                PipelineError::BadTemplate {
                    code: "SA000".to_string(),
                    step: spec.primitive.clone(),
                    message: e.to_string(),
                }
            })?;
            for (name, value) in &spec.overrides {
                prim.set_hyperparam(name, value.clone()).map_err(|e| PipelineError::Step {
                    step: spec.primitive.clone(),
                    source: e.to_string(),
                })?;
            }
            for (pid, value) in lambda {
                if pid.step == idx {
                    prim.set_hyperparam(&pid.name, value.clone()).map_err(|e| {
                        PipelineError::Step {
                            step: spec.primitive.clone(),
                            source: e.to_string(),
                        }
                    })?;
                }
            }
            steps.push(prim);
        }
        Ok(Pipeline::new(&self.name, steps))
    }

    /// Build with defaults only.
    pub fn build_default(&self) -> Result<Pipeline> {
        self.build(&[])
    }

    /// Statically analyse the template (fixed overrides only) against the
    /// primitives' declared contracts. Pure — builds no runtime state.
    pub fn analyze(&self) -> sintel_analyze::Report {
        self.analyze_with(&[])
    }

    /// Statically analyse the template with the extra configuration λ
    /// merged over the fixed overrides (λ wins on conflicts) — exactly
    /// the assignment order [`Template::build`] applies at runtime.
    pub fn analyze_with(&self, lambda: &[(ParamId, HyperValue)]) -> sintel_analyze::Report {
        self.analyze_for_input_len(lambda, None)
    }

    /// [`Template::analyze_with`] plus a known bound on the input length
    /// (a serve window, a dataset's sample count): the shape pass then
    /// also rejects configurations whose output is statically empty
    /// (SA007) — a window requirement no feasible input can satisfy.
    pub fn analyze_for_input_len(
        &self,
        lambda: &[(ParamId, HyperValue)],
        input_len: Option<usize>,
    ) -> sintel_analyze::Report {
        sintel_analyze::analyze_pipeline_for_len(&self.name, &self.step_configs(lambda), input_len)
    }

    /// Minimum number of (post-preprocessing) input samples for which
    /// every step produces non-empty output, from the analyzer's symbolic
    /// shape algebra. `None` when a primitive is unknown or no finite
    /// requirement is derivable.
    pub fn required_input_len(&self) -> Option<usize> {
        sintel_analyze::required_input_len(&self.step_configs(&[]))
    }

    /// Static flop/byte estimate for running the template (fixed
    /// overrides only) on `input_len` samples — the analyzer's cost
    /// model. `None` when a primitive is unknown.
    pub fn estimated_cost(&self, input_len: usize) -> Option<sintel_analyze::CostEstimate> {
        self.estimated_cost_with(&[], input_len)
    }

    /// [`Template::estimated_cost`] with a candidate λ merged over the
    /// fixed overrides — what the tuner's cost gate prices before
    /// deciding whether a proposal is worth executing.
    pub fn estimated_cost_with(
        &self,
        lambda: &[(ParamId, HyperValue)],
        input_len: usize,
    ) -> Option<sintel_analyze::CostEstimate> {
        sintel_analyze::estimate_steps(&self.step_configs(lambda), input_len)
    }

    /// The analyzer's view of the steps: fixed overrides merged with λ
    /// (λ wins), mirroring [`Template::build`]'s assignment order.
    fn step_configs(&self, lambda: &[(ParamId, HyperValue)]) -> Vec<sintel_analyze::StepConfig> {
        self.steps
            .iter()
            .enumerate()
            .map(|(idx, spec)| {
                let mut hypers: Vec<(String, HyperValue)> = spec
                    .overrides
                    .iter()
                    .filter(|(name, _)| {
                        !lambda.iter().any(|(pid, _)| pid.step == idx && &pid.name == name)
                    })
                    .cloned()
                    .collect();
                for (pid, value) in lambda {
                    if pid.step == idx {
                        hypers.push((pid.name.clone(), value.clone()));
                    }
                }
                sintel_analyze::StepConfig::with(&spec.primitive, hypers)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_template() -> Template {
        Template {
            name: "demo".into(),
            steps: vec![
                StepSpec::plain("time_segments_aggregate"),
                StepSpec::plain("SimpleImputer"),
                StepSpec::with("rolling_window_sequences", &[("window_size", HyperValue::Int(8))]),
            ],
        }
    }

    #[test]
    fn space_excludes_fixed_and_overridden() {
        let t = demo_template();
        let space = t.hyperparameter_space().unwrap();
        // window_size is overridden -> excluded; step is fixed -> excluded.
        assert!(!space.iter().any(|(p, _)| p.name == "window_size"));
        assert!(!space.iter().any(|(p, _)| p.name == "step"));
        // method (tsa) and strategy (imputer) are tunable.
        assert!(space.iter().any(|(p, _)| p.step == 0 && p.name == "method"));
        assert!(space.iter().any(|(p, _)| p.step == 1 && p.name == "strategy"));
    }

    #[test]
    fn build_applies_overrides_and_lambda() {
        let t = demo_template();
        let lambda = vec![(
            ParamId { step: 1, name: "strategy".into() },
            HyperValue::Text("zero".into()),
        )];
        assert!(t.build(&lambda).is_ok());
        // Out-of-range lambda fails loudly.
        let bad = vec![(
            ParamId { step: 1, name: "strategy".into() },
            HyperValue::Text("bogus".into()),
        )];
        assert!(matches!(t.build(&bad), Err(PipelineError::Step { .. })));
    }

    #[test]
    fn unknown_primitive_in_template() {
        let t = Template::from_names("broken", &["nonexistent_primitive"]);
        match t.build_default() {
            Err(PipelineError::BadTemplate { code, step, message }) => {
                assert_eq!(code, "SA000");
                assert_eq!(step, "nonexistent_primitive");
                assert!(message.contains("unknown primitive"));
            }
            other => panic!("expected BadTemplate, got {other:?}"),
        }
        assert!(t.hyperparameter_space().is_err());
    }

    #[test]
    fn analyze_with_merges_lambda_over_overrides() {
        let t = demo_template();
        // The override (window_size = 8) is valid -> clean.
        assert!(!t.analyze().has_errors());
        // λ replaces the override with an out-of-domain value -> SA003.
        let lambda = vec![(
            ParamId { step: 2, name: "window_size".into() },
            HyperValue::Int(100_000),
        )];
        let report = t.analyze_with(&lambda);
        assert!(report.has_errors());
        assert!(report.errors().any(|d| d.code == sintel_analyze::Code::HyperOutOfDomain));
    }

    #[test]
    fn param_id_display() {
        let pid = ParamId { step: 2, name: "alpha".into() };
        assert_eq!(pid.to_string(), "step2#alpha");
    }
}

//! Golden diagnostics: one broken-template fixture per SA code asserting
//! the exact code/step/message the analyzer emits, plus the guarantee
//! that every hub and extension pipeline analyzes clean.

use sintel_pipeline::hub;
use sintel_pipeline::{StepSpec, Template};
use sintel_primitives::HyperValue;

fn template(name: &str, steps: Vec<StepSpec>) -> Template {
    Template { name: name.to_string(), steps }
}

fn preprocessing() -> Vec<StepSpec> {
    vec![
        StepSpec::plain("time_segments_aggregate"),
        StepSpec::plain("SimpleImputer"),
        StepSpec::plain("MinMaxScaler"),
    ]
}

#[test]
fn every_hub_and_extension_pipeline_analyzes_clean() {
    for name in hub::available_pipelines().iter().chain(hub::EXTENSION_PIPELINES) {
        let report = hub::template_by_name(name).unwrap().analyze();
        assert!(report.is_clean(), "{name} is not clean:\n{}", report.render());
        assert_eq!(report.summary(), "clean");
    }
}

#[test]
fn golden_sa000_unknown_primitive() {
    let t = template(
        "fixture_sa000",
        vec![StepSpec::plain("time_segments_aggregate"), StepSpec::plain("flux_capacitor")],
    );
    let report = t.analyze();
    assert_eq!(report.diagnostics.len(), 1, "SA000 aborts the walk");
    let d = &report.diagnostics[0];
    assert_eq!(d.code.as_str(), "SA000");
    assert_eq!(d.severity.label(), "error");
    assert_eq!(d.step, 1);
    assert_eq!(d.primitive, "flux_capacitor");
    assert_eq!(d.message, "unknown primitive 'flux_capacitor'");
}

#[test]
fn golden_sa001_dangling_read() {
    // No rolling_window_sequences: the regressor's `windows` input has no
    // producer.
    let mut steps = preprocessing();
    steps.extend([
        StepSpec::plain("lstm_regressor"),
        StepSpec::plain("regression_errors"),
        StepSpec::plain("find_anomalies"),
    ]);
    let report = template("fixture_sa001", steps).analyze();
    assert!(report.has_errors());
    let d = report
        .errors()
        .find(|d| d.step == 3)
        .expect("dangling read at the regressor step");
    assert_eq!(d.code.as_str(), "SA001");
    assert_eq!(d.primitive, "lstm_regressor");
    assert_eq!(
        d.message,
        "required input 'windows' (windows) is never produced by an upstream step"
    );
}

#[test]
fn golden_sa002_shadowed_output() {
    // holt_winters overwrites arima's never-read predictions.
    let mut steps = preprocessing();
    steps.extend([
        StepSpec::plain("arima"),
        StepSpec::plain("holt_winters"),
        StepSpec::plain("regression_errors"),
        StepSpec::plain("find_anomalies"),
    ]);
    let report = template("fixture_sa002", steps).analyze();
    assert!(!report.has_errors(), "shadowing is a warning, not an error");
    let d = report
        .warnings()
        .find(|d| d.message.contains("'predictions'"))
        .expect("shadowed predictions warning");
    assert_eq!(d.code.as_str(), "SA002");
    assert_eq!(d.severity.label(), "warning");
    assert_eq!(d.step, 4);
    assert_eq!(d.primitive, "holt_winters");
    assert_eq!(
        d.message,
        "output 'predictions' of step 3 (arima) is overwritten before being read"
    );
}

#[test]
fn golden_sa003_hyper_out_of_domain() {
    let mut steps = preprocessing();
    steps.extend([
        StepSpec::with("arima", &[("p", HyperValue::Int(999))]),
        StepSpec::plain("regression_errors"),
        StepSpec::plain("find_anomalies"),
    ]);
    let report = template("fixture_sa003", steps).analyze();
    let errors: Vec<_> = report.errors().collect();
    assert_eq!(errors.len(), 1);
    let d = errors[0];
    assert_eq!(d.code.as_str(), "SA003");
    assert_eq!(d.step, 3);
    assert_eq!(d.primitive, "arima");
    assert!(d.message.contains("out of range"), "{}", d.message);
    assert!(d.hint.contains("declared domain"), "{}", d.hint);
}

#[test]
fn golden_sa004_phase_ordering() {
    let steps = vec![
        StepSpec::plain("time_segments_aggregate"),
        StepSpec::plain("arima"),
        StepSpec::plain("MinMaxScaler"),
        StepSpec::plain("regression_errors"),
        StepSpec::plain("find_anomalies"),
    ];
    let report = template("fixture_sa004", steps).analyze();
    let errors: Vec<_> = report.errors().collect();
    assert_eq!(errors.len(), 1);
    let d = errors[0];
    assert_eq!(d.code.as_str(), "SA004");
    assert_eq!(d.step, 2);
    assert_eq!(d.primitive, "MinMaxScaler");
    assert_eq!(d.message, "preprocessing step after a modeling step violates engine ordering");
}

#[test]
fn golden_sa005_window_inconsistency() {
    let mut steps = preprocessing();
    steps.extend([
        StepSpec::with("rolling_window_sequences", &[("targets", HyperValue::Flag(false))]),
        StepSpec::plain("lstm_regressor"),
        StepSpec::plain("regression_errors"),
        StepSpec::plain("find_anomalies"),
    ]);
    let report = template("fixture_sa005", steps).analyze();
    let errors: Vec<_> = report.errors().collect();
    assert_eq!(errors.len(), 1);
    let d = errors[0];
    assert_eq!(d.code.as_str(), "SA005");
    assert_eq!(d.step, 3);
    assert_eq!(d.primitive, "rolling_window_sequences");
    assert_eq!(
        d.message,
        "rolling_window_sequences has targets=false but step 4 (lstm_regressor) \
         requires 'targets'"
    );
}

#[test]
fn golden_sa006_shape_mismatch() {
    // ARIMA's point-aligned targets (length n-5) fed to an LSTM whose
    // predictions are per-window (length (n-51)/1+1): the consumer's
    // aligned inputs have provably different static lengths.
    let mut steps = preprocessing();
    steps.extend([
        StepSpec::with(
            "rolling_window_sequences",
            &[("window_size", HyperValue::Int(50)), ("targets", HyperValue::Flag(true))],
        ),
        StepSpec::plain("arima"),
        StepSpec::plain("lstm_regressor"),
        StepSpec::plain("regression_errors"),
        StepSpec::plain("find_anomalies"),
    ]);
    let report = template("fixture_sa006", steps).analyze();
    assert!(report.has_errors());
    let d = report
        .errors()
        .find(|d| d.code.as_str() == "SA006")
        .expect("shape mismatch at the consumer");
    assert_eq!(d.severity.label(), "error");
    assert_eq!(d.step, 5);
    assert_eq!(d.primitive, "lstm_regressor");
    assert!(d.message.contains("mismatched static lengths"), "{}", d.message);
    assert!(d.hint.contains("align their producers"), "{}", d.hint);
}

#[test]
fn golden_sa007_statically_empty_output() {
    // A 50-sample window + 1 target cannot be cut from 40 samples; with
    // the input bound known, the shape pass proves the pipeline dead.
    let mut steps = preprocessing();
    steps.extend([
        StepSpec::with(
            "rolling_window_sequences",
            &[("window_size", HyperValue::Int(50)), ("targets", HyperValue::Flag(true))],
        ),
        StepSpec::plain("lstm_regressor"),
        StepSpec::plain("regression_errors"),
        StepSpec::plain("find_anomalies"),
    ]);
    let t = template("fixture_sa007", steps);
    // Unbounded input: nothing to prove, clean.
    assert!(t.analyze().is_clean(), "{}", t.analyze().render());
    let report = t.analyze_for_input_len(&[], Some(40));
    let errors: Vec<_> = report.errors().collect();
    assert_eq!(errors.len(), 1, "{}", report.render());
    let d = errors[0];
    assert_eq!(d.code.as_str(), "SA007");
    assert_eq!(d.step, 3);
    assert_eq!(d.primitive, "rolling_window_sequences");
    assert_eq!(
        d.message,
        "output 'windows' is statically empty: requires at least 51 input samples but at \
         most 40 are available"
    );
    // One extra sample squeezes out exactly one window: clean again.
    assert!(t.analyze_for_input_len(&[], Some(51)).is_clean());
}

#[test]
fn hub_build_refuses_broken_extension_template() {
    // A template with an error diagnostic must not build through the hub
    // path; Template::build_default stays available for callers that
    // explicitly opt out of analysis.
    let mut steps = preprocessing();
    steps.extend([
        StepSpec::plain("lstm_regressor"),
        StepSpec::plain("regression_errors"),
        StepSpec::plain("find_anomalies"),
    ]);
    let t = template("fixture_sa001", steps);
    assert!(t.analyze().has_errors());
    // The raw builder still works: analysis is static wiring-checking,
    // not a runtime gate at this layer.
    assert!(t.build_default().is_ok());
}

//! Regression test for the run-policy watchdog thread leak: a timed-out
//! pass used to leave both the watchdog and the hung worker thread
//! alive forever. With cooperative cancellation (the watchdog cancels
//! the worker's `CancelToken`, primitive hot loops poll it), every
//! thread must be reclaimed shortly after the timeout fires.

use std::time::{Duration, Instant};

use sintel_pipeline::policy::{
    classify_pipeline_error, run_with_policy, Failure, FailureKind, RunPolicy,
};
use sintel_pipeline::template::{StepSpec, Template};
use sintel_primitives::HyperValue;
use sintel_timeseries::Signal;

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn watchdog_and_hung_worker_threads_are_reclaimed() {
    let template = Template {
        name: "hang".into(),
        steps: vec![StepSpec::with("faulty_hang", &[("sleep_ms", HyperValue::Int(120_000))])],
    };
    let signal = Signal::from_values("hung", (0..64).map(|t| (t as f64).sin()).collect());
    let policy = RunPolicy::single_attempt(Duration::from_millis(200));

    let baseline = thread_count();
    for _ in 0..3 {
        let template = template.clone();
        let signal = signal.clone();
        let (result, _attempts) = run_with_policy(&policy, move || {
            let fail = |e: &sintel_pipeline::PipelineError| {
                Failure::new(classify_pipeline_error(e), e.to_string())
            };
            let mut pipeline = template.build_default().map_err(|e| fail(&e))?;
            pipeline.fit(&signal).map_err(|e| fail(&e))?;
            pipeline.detect(&signal).map_err(|e| fail(&e))
        });
        let failure = result.expect_err("a 120 s hang must time out in 200 ms");
        assert_eq!(failure.kind, FailureKind::Timeout);
    }

    // Cooperative cancellation: hung workers poll the cancel token every
    // few milliseconds, so both they and their watchdogs unwind quickly.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = thread_count();
        if now <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "thread leak: baseline {baseline}, still {now} after timeout + grace period"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

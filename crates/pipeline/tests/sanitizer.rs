//! Contract-conformance sanitizer tests (cargo feature `sanitizer`).
//!
//! The sanitizer instruments `Context` slot access during execution and
//! fails a run whose primitive touches a slot its declared `Contract`
//! omits (SA009). Two obligations are covered here:
//!
//! 1. a seeded contract-drift mutation (`faulty_contract_drift`, cargo
//!    feature `faulty`) is caught deterministically, with a replayable
//!    error message;
//! 2. the full shipped primitive set runs clean — no primitive's code
//!    has drifted from its declared contract.
#![cfg(feature = "sanitizer")]

use sintel_pipeline::{
    available_pipelines, template_by_name, ParamId, PipelineError, StepSpec, Template,
};
use sintel_primitives::HyperValue;
use sintel_timeseries::Signal;

fn sine(n: usize) -> Signal {
    let mut vals: Vec<f64> =
        (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 40.0).sin()).collect();
    for v in vals.iter_mut().skip(n / 2).take(6) {
        *v += 5.0;
    }
    Signal::from_values("sine", vals)
}

fn drift_template(mode: &str) -> Template {
    Template {
        name: "seeded_drift".into(),
        steps: vec![
            StepSpec::plain("time_segments_aggregate"),
            StepSpec::plain("SimpleImputer"),
            StepSpec::with(
                "faulty_contract_drift",
                &[("mode", HyperValue::Text(mode.into()))],
            ),
            StepSpec::plain("fixed_threshold"),
        ],
    }
}

#[test]
fn seeded_write_drift_is_caught_and_replayable() {
    let run = || {
        let mut pipeline = drift_template("write").build_default().unwrap();
        pipeline.fit(&sine(64)).unwrap_err()
    };
    let err = run();
    match &err {
        PipelineError::ContractViolation { step, phase, access, slot } => {
            assert_eq!(step, "faulty_contract_drift");
            assert_eq!(phase, "produce");
            assert_eq!(access, "write");
            assert_eq!(slot, "drift_scores");
        }
        other => panic!("expected ContractViolation, got {other}"),
    }
    let rendered = err.to_string();
    assert!(rendered.contains("[SA009]"), "{rendered}");
    assert!(rendered.contains("faulty_contract_drift"), "{rendered}");
    assert!(rendered.contains("drift_scores"), "{rendered}");
    // Deterministic: replaying the exact run reproduces the finding.
    assert_eq!(run().to_string(), rendered);
}

#[test]
fn seeded_read_drift_is_caught() {
    let mut pipeline = drift_template("read").build_default().unwrap();
    let err = pipeline.fit(&sine(64)).unwrap_err();
    match &err {
        PipelineError::ContractViolation { step, phase, access, slot } => {
            assert_eq!(step, "faulty_contract_drift");
            assert_eq!(phase, "produce");
            assert_eq!(access, "read");
            assert_eq!(slot, "windows");
        }
        other => panic!("expected ContractViolation, got {other}"),
    }
}

/// A λ that makes deep models cheap without changing dataflow: one
/// epoch, minimum hidden width.
fn cheap_lambda(template: &Template) -> Vec<(ParamId, HyperValue)> {
    template
        .hyperparameter_space()
        .expect("hub template space")
        .into_iter()
        .filter_map(|(pid, _)| match pid.name.as_str() {
            "epochs" => Some((pid, HyperValue::Int(1))),
            "hidden" => Some((pid, HyperValue::Int(4))),
            _ => None,
        })
        .collect()
}

/// Every shipped hub/extension pipeline runs fit + detect + incremental
/// detect under the sanitizer without a single contract violation: the
/// primitives' code matches their declared contracts in all phases.
#[test]
fn full_primitive_set_has_no_contract_drift() {
    let train = sine(400);
    let test = sine(400);
    for name in available_pipelines() {
        let template = template_by_name(name).unwrap();
        let lambda = cheap_lambda(&template);
        let mut pipeline = template.build(&lambda).unwrap();
        pipeline
            .fit_detect(&train, &test)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        pipeline
            .detect_incremental(&test)
            .unwrap_or_else(|e| panic!("{name} (incremental): {e}"));
    }
}

/// `detrend` and `StandardScaler` are not in any hub template; sweep
/// them through a forecasting chain so the clean pass covers all 19
/// registered primitives.
#[test]
fn non_hub_preprocessing_is_drift_free_too() {
    let template = Template {
        name: "detrended_arima".into(),
        steps: vec![
            StepSpec::plain("time_segments_aggregate"),
            StepSpec::plain("SimpleImputer"),
            StepSpec::plain("StandardScaler"),
            StepSpec::plain("detrend"),
            StepSpec::with("arima", &[("p", HyperValue::Int(2)), ("q", HyperValue::Int(0))]),
            StepSpec::plain("regression_errors"),
            StepSpec::plain("find_anomalies"),
        ],
    };
    let mut pipeline = template.build_default().unwrap();
    pipeline.fit_detect(&sine(400), &sine(400)).unwrap();
}

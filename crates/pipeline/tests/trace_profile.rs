//! The profile is a view over the span records: with tracing on, the
//! exported trace contains exactly the fit/produce spans the profile
//! reports, nested under the pipeline run spans.
//!
//! Lives in its own integration binary because the trace buffer is
//! process-global — unit tests running pipelines in parallel would
//! interleave their spans into the capture.

use sintel_pipeline::Template;
use sintel_timeseries::Signal;

fn spiky_signal(n: usize) -> Signal {
    let mut vals: Vec<f64> =
        (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 40.0).sin()).collect();
    for v in vals.iter_mut().skip(n / 2).take(6) {
        *v += 5.0;
    }
    Signal::from_values("spiky", vals)
}

#[test]
fn profile_matches_exported_trace() {
    let template = Template::from_names(
        "trace_arima",
        &[
            "time_segments_aggregate",
            "SimpleImputer",
            "MinMaxScaler",
            "arima",
            "regression_errors",
            "find_anomalies",
        ],
    );
    let mut pipeline = template.build_default().unwrap();
    let s = spiky_signal(400);
    sintel_obs::tracing_start();
    pipeline.fit(&s).unwrap();
    pipeline.detect(&s).unwrap();
    let events = sintel_obs::tracing_stop();
    let prof = pipeline.profile().clone();

    let closes_of = |name: &str| {
        events
            .iter()
            .filter(|e| e.kind == sintel_obs::EventKind::Close && e.name == name)
            .count()
    };
    assert_eq!(closes_of("pipeline.fit"), 1);
    assert_eq!(closes_of("pipeline.produce"), 1);
    assert_eq!(closes_of("primitive.fit"), prof.steps.len());
    assert_eq!(closes_of("primitive.produce"), 2 * prof.steps.len());

    // Every primitive span's parent is a pipeline run span.
    let run_ids: Vec<u64> = events
        .iter()
        .filter(|e| e.name.starts_with("pipeline."))
        .map(|e| e.id)
        .collect();
    for e in events.iter().filter(|e| e.name.starts_with("primitive.")) {
        assert!(e.parent.is_some_and(|p| run_ids.contains(&p)), "{e:?}");
    }

    // The profile totals are the run spans' recorded durations.
    let close_duration = |name: &str| {
        events
            .iter()
            .find(|e| e.kind == sintel_obs::EventKind::Close && e.name == name)
            .and_then(|e| e.duration_ns)
            .unwrap()
    };
    assert_eq!(close_duration("pipeline.fit"), prof.fit_total.as_nanos() as u64);
    assert_eq!(
        close_duration("pipeline.produce"),
        prof.detect_total.as_nanos() as u64
    );

    // Round-trip: the JSONL export parses back to the same events.
    let parsed = sintel_obs::parse_jsonl(&sintel_obs::export_jsonl(&events)).unwrap();
    assert_eq!(parsed, events);
}

#![warn(missing_docs)]
// Dense kernels index by construction-checked dimensions; every routine
// that does so carries a function-level allow with its invariant spelled
// out. New indexing must either use checked access or justify an allow.
#![deny(clippy::indexing_slicing)]
// Hot kernels iterate, they don't index-by-range: a `for i in 0..n`
// over a single slice defeats bounds-check elision and hides the
// access pattern from the vectorizer. Verified by `scripts/verify.sh`.
#![deny(clippy::needless_range_loop)]

//! # sintel-linalg
//!
//! Minimal dense linear algebra substrate for the Sintel reproduction.
//!
//! The Python Sintel stack leans on NumPy/SciPy; this crate provides the
//! subset the Rust port actually needs: a row-major [`Matrix`] with the
//! usual arithmetic, matrix–vector and matrix–matrix products, Gaussian
//! elimination with partial pivoting ([`Matrix::solve`]) for ARIMA least
//! squares, and a Cholesky factorisation ([`cholesky`] / [`solve_spd`])
//! for the Gaussian-process hyperparameter tuner.
//!
//! The implementation favours clarity and testability over SIMD tricks —
//! every routine is exercised by unit and property tests.

pub mod matrix;
pub mod solve;

pub use matrix::Matrix;
pub use solve::{cholesky, solve_lower, solve_spd, solve_upper};

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Dimensions of the operands are incompatible for the operation.
    DimensionMismatch {
        /// What the operation required.
        expected: String,
        /// What it was given.
        got: String,
    },
    /// A factorisation failed (singular or non positive-definite input).
    NotPositiveDefinite,
    /// A solve hit a (numerically) singular pivot.
    Singular,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}

//! Linear solvers: Gaussian elimination with partial pivoting and
//! Cholesky factorisation for symmetric positive-definite systems.

use crate::{LinalgError, Matrix, Result};

impl Matrix {
    /// Solve `self * x = b` for a square system using Gaussian elimination
    /// with partial pivoting. Used for ARIMA least squares (via the normal
    /// equations) and anywhere a general solve is needed.
    // Elimination indexes `x` (length n, checked above) with row/col < n.
    #[allow(clippy::indexing_slicing)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows();
        if self.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                got: format!("{} x {}", self.rows(), self.cols()),
            });
        }
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                got: format!("length {}", b.len()),
            });
        }
        // Augmented working copy.
        let mut a = self.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot: largest magnitude entry on/below the diagonal.
            let pivot_row = (col..n)
                .max_by(|&i, &j| a[(i, col)].abs().total_cmp(&a[(j, col)].abs()))
                .expect("non-empty pivot range");
            if a[(pivot_row, col)].abs() < 1e-12 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = a[(col, j)];
                    a[(col, j)] = a[(pivot_row, j)];
                    a[(pivot_row, j)] = tmp;
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[(col, col)];
            for row in (col + 1)..n {
                let factor = a[(row, col)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    let v = a[(col, j)];
                    a[(row, j)] -= factor * v;
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for j in (col + 1)..n {
                sum -= a[(col, j)] * x[j];
            }
            x[col] = sum / a[(col, col)];
        }
        Ok(x)
    }

    /// Least-squares solve of the overdetermined system `self * x ≈ b`
    /// via the normal equations `(AᵀA + ridge·I) x = Aᵀ b`. The small ridge
    /// keeps near-collinear designs (common in AR regressions on smooth
    /// signals) numerically solvable.
    pub fn least_squares(&self, b: &[f64], ridge: f64) -> Result<Vec<f64>> {
        if self.rows() != b.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("rhs of length {}", self.rows()),
                got: format!("length {}", b.len()),
            });
        }
        let at = self.transpose();
        let mut ata = at.matmul(self)?;
        for i in 0..ata.rows() {
            ata[(i, i)] += ridge;
        }
        let atb = at.matvec(b)?;
        ata.solve(&atb)
    }
}

/// Cholesky factorisation of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `L Lᵀ = a`.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: "square matrix".into(),
            got: format!("{} x {}", a.rows(), a.cols()),
        });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Forward substitution: solve `L y = b` for lower-triangular `L`.
// `b` and `y` both have length n (checked/allocated above the loops);
// every index is < n.
#[allow(clippy::indexing_slicing)]
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = l.rows();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: format!("rhs of length {n}"),
            got: format!("length {}", b.len()),
        });
    }
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l[(i, j)] * y[j];
        }
        if l[(i, i)].abs() < 1e-14 {
            return Err(LinalgError::Singular);
        }
        y[i] = sum / l[(i, i)];
    }
    Ok(y)
}

/// Back substitution: solve `U x = b` for upper-triangular `U`.
// Same invariant as `solve_lower`.
#[allow(clippy::indexing_slicing)]
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = u.rows();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: format!("rhs of length {n}"),
            got: format!("length {}", b.len()),
        });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in (i + 1)..n {
            sum -= u[(i, j)] * x[j];
        }
        if u[(i, i)].abs() < 1e-14 {
            return Err(LinalgError::Singular);
        }
        x[i] = sum / u[(i, i)];
    }
    Ok(x)
}

/// Solve the SPD system `a x = b` via Cholesky: `L Lᵀ x = b`.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let l = cholesky(a)?;
    let y = solve_lower(&l, b)?;
    solve_upper(&l.transpose(), &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn cholesky_known() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!(recon.sub(&a).frobenius() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert_eq!(cholesky(&a).unwrap_err(), LinalgError::NotPositiveDefinite);
    }

    #[test]
    fn spd_solve_matches_direct_solve() {
        let a = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let b = [1.0, 2.0, 3.0];
        let x1 = a.solve(&b).unwrap();
        let x2 = solve_spd(&a, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 3 + 2x with exact data.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let design = Matrix::from_rows(
            &xs.iter().map(|&x| vec![1.0, x]).collect::<Vec<_>>(),
        );
        let y: Vec<f64> = xs.iter().map(|&x| 3.0 + 2.0 * x).collect();
        let beta = design.least_squares(&y, 1e-9).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-6);
        assert!((beta[1] - 2.0).abs() < 1e-6);
    }

    /// Random SPD matrix as A = B Bᵀ + n·I.
    fn spd_matrix(rng: &mut SintelRng) -> Matrix {
        let n = 2 + rng.index(4);
        let d = (0..n * n).map(|_| rng.uniform_range(-3.0, 3.0)).collect();
        let b = Matrix::from_vec(n, n, d);
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn prop_cholesky_reconstructs() {
        let mut rng = SintelRng::seed_from_u64(0x2111);
        for _ in 0..256 {
            let a = spd_matrix(&mut rng);
            let l = cholesky(&a).unwrap();
            let recon = l.matmul(&l.transpose()).unwrap();
            assert!(recon.sub(&a).frobenius() < 1e-8 * (1.0 + a.frobenius()));
        }
    }

    #[test]
    fn prop_spd_solve_residual_small() {
        let mut rng = SintelRng::seed_from_u64(0x2112);
        for _ in 0..256 {
            let a = spd_matrix(&mut rng);
            let n = a.rows();
            let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let x = solve_spd(&a, &b).unwrap();
            let r = a.matvec(&x).unwrap();
            for (ri, bi) in r.iter().zip(&b) {
                assert!((ri - bi).abs() < 1e-6 * (1.0 + bi.abs() + a.frobenius()));
            }
        }
    }
}

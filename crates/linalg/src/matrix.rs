//! Row-major dense matrix.

use crate::{LinalgError, Result};

/// A dense, row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer. Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Build from a slice of rows. All rows must share one length.
    // The `rows[0]` access is guarded by the `is_empty` early return.
    #[allow(clippy::indexing_slicing)]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "from_rows: ragged rows");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    // `data.len() == rows * cols` by construction; `i < rows` is the
    // caller's contract, matching slice semantics (panic on violation).
    #[allow(clippy::indexing_slicing)]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow a row.
    // Same invariant as `row`.
    #[allow(clippy::indexing_slicing)]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy out a column.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterate over the rows as slices (no allocation). A matrix with
    /// zero columns yields no rows.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Row-block size of the parallel matmul path. Fixed (never derived
    /// from the thread count) so the work decomposition — and therefore
    /// every partial-sum grouping — is identical at any `SINTEL_THREADS`.
    pub const MATMUL_BLOCK_ROWS: usize = 16;

    /// Flop-count threshold (`rows * cols * other.cols`) above which
    /// matmul fans out across threads; below it, spawn overhead wins.
    ///
    /// The heuristic: one fused multiply-add is ~1 ns on a scalar core,
    /// so `2^20` flops is ~1 ms of serial work — roughly 10× the cost
    /// of spawning and joining the scoped worker pool. Below the
    /// threshold the pool overhead dominates; above it the fan-out pays
    /// for itself. The exact boundary behaviour (`>=`, not `>`) is
    /// pinned by a unit test so a future edit cannot silently move it.
    pub const MATMUL_PAR_FLOPS: usize = 1 << 20;

    /// Number of manual accumulator lanes held in registers by the
    /// vectorized kernel. Each lane owns one output column of the
    /// current row, so the lane count never changes any per-element
    /// reduction order — it only decides how many columns are carried
    /// through the `k` loop at once.
    pub const MATMUL_LANES: usize = 8;

    /// Whether a product of `flops = rows * cols * other.cols` takes
    /// the row-blocked parallel path under a budget of `threads`.
    /// Pure in its inputs so the threshold is unit-testable at its
    /// exact boundary without touching the global thread budget.
    pub fn matmul_uses_blocked(flops: usize, threads: usize) -> bool {
        flops >= Self::MATMUL_PAR_FLOPS && threads > 1
    }

    /// Scalar reference kernel: compute output rows `range` of
    /// `self * other` into `out_rows` in the plain i-k-j order.
    ///
    /// This loop nest is the *specification* of the reduction order
    /// (DESIGN.md §4j): element `(i, j)` is `Σ_k A[i,k] * B[k,j]`,
    /// accumulated with `k` ascending and terms with `A[i,k] == 0.0`
    /// skipped (which also suppresses `0 * ±inf -> NaN` and keeps
    /// `-0.0` contributions out of the sum). The vectorized kernel
    /// must stay bitwise-identical to this one; the property suite
    /// enforces it.
    // Row arithmetic is in range: `out_rows.len() == range.len() * cols`
    // by the caller's contract and `k < self.cols == other.rows`.
    #[doc(hidden)]
    #[allow(clippy::indexing_slicing)]
    pub fn matmul_rows_scalar_into(
        &self,
        other: &Matrix,
        range: std::ops::Range<usize>,
        out_rows: &mut [f64],
    ) {
        let out_cols = other.cols;
        for (local, i) in range.enumerate() {
            let out_row = &mut out_rows[local * out_cols..(local + 1) * out_cols];
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Vectorized kernel: compute output rows `range` of `self * other`
    /// into `out_rows` with [`Self::MATMUL_LANES`] manual accumulators.
    ///
    /// Register blocking over output columns: each group of
    /// `MATMUL_LANES` columns is carried through the whole `k` loop in
    /// a stack array, so the inner loop is a fixed-width unrolled
    /// multiply-add with no load/store of the output row per `k` step.
    /// Every accumulator owns exactly one output element, accumulated
    /// with `k` ascending and the same `A[i,k] == 0.0` skip — so the
    /// reduction order per element is *identical* to
    /// [`Self::matmul_rows_scalar_into`] and the results are bitwise
    /// equal by construction, not by tolerance.
    ///
    /// This is the single kernel both the serial and parallel paths
    /// run: each output row is a pure function of one row of `self`
    /// and all of `other`, so the result is bitwise-identical however
    /// rows are partitioned.
    // Slicing is in range: `out_rows.len() == range.len() * out_cols`
    // by the caller's contract, `j` advances in lock-step with the
    // exact chunks of `out_row`, and `k < self.cols == other.rows`.
    #[doc(hidden)]
    #[allow(clippy::indexing_slicing)]
    pub fn matmul_rows_into(
        &self,
        other: &Matrix,
        range: std::ops::Range<usize>,
        out_rows: &mut [f64],
    ) {
        const LANES: usize = Matrix::MATMUL_LANES;
        let out_cols = other.cols;
        for (local, i) in range.enumerate() {
            let a_row = self.row(i);
            let out_row = &mut out_rows[local * out_cols..(local + 1) * out_cols];
            let mut chunks = out_row.chunks_exact_mut(LANES);
            let mut j = 0usize;
            for out_chunk in &mut chunks {
                let mut acc = [0.0f64; LANES];
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b = &other.row(k)[j..j + LANES];
                    for (acc_l, &b_l) in acc.iter_mut().zip(b) {
                        *acc_l += a * b_l;
                    }
                }
                out_chunk.copy_from_slice(&acc);
                j += LANES;
            }
            // Remainder lanes (out_cols % LANES): same k-ascending
            // reduction over a short accumulator prefix.
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let width = rem.len();
                let mut acc = [0.0f64; LANES];
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b = &other.row(k)[j..j + width];
                    for (acc_l, &b_l) in acc[..width].iter_mut().zip(b) {
                        *acc_l += a * b_l;
                    }
                }
                rem.copy_from_slice(&acc[..width]);
            }
        }
    }

    /// Matrix product `self * other`.
    ///
    /// Above [`Self::MATMUL_PAR_FLOPS`] the product is computed in
    /// row blocks on the [`sintel_common::par`] pool; the blocking is a
    /// function of the shapes only, so the bits are identical at every
    /// thread count.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("({} x k) * (k x m)", self.rows),
                got: format!("({} x {}) * ({} x {})", self.rows, self.cols, other.rows, other.cols),
            });
        }
        let flops = self.rows * self.cols * other.cols;
        if Self::matmul_uses_blocked(flops, sintel_common::configured_threads()) {
            return Ok(self.matmul_blocked(other, Self::MATMUL_BLOCK_ROWS));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_rows_into(other, 0..self.rows, out.as_mut_slice());
        Ok(out)
    }

    /// Row-blocked parallel product with an explicit block size —
    /// exposed (hidden) so the property suite can exercise the blocked
    /// path on small, cheap shapes. Shapes must already agree.
    #[doc(hidden)]
    pub fn matmul_blocked(&self, other: &Matrix, block_rows: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul_blocked: shape mismatch");
        let out_cols = other.cols;
        let ranges = sintel_common::par::block_ranges(self.rows, block_rows);
        let blocks = sintel_common::par_map(ranges.len(), |b| {
            // Indexing is in range: `b` comes from `0..ranges.len()`.
            #[allow(clippy::indexing_slicing)]
            let range = ranges[b].clone();
            let mut rows = vec![0.0; range.len() * out_cols];
            self.matmul_rows_into(other, range, &mut rows);
            rows
        });
        let mut data = Vec::with_capacity(self.rows * out_cols);
        for block in blocks {
            data.extend_from_slice(&block);
        }
        Matrix::from_vec(self.rows, out_cols, data)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                got: format!("length {}", v.len()),
            });
        }
        Ok((0..self.rows).map(|i| crate::dot(self.row(i), v)).collect())
    }

    /// Element-wise sum; panics on shape mismatch (programmer error).
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise difference; panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "sub: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Apply a function to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// True when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    // The debug_assert documents the invariant; the release-mode flat
    // index is in range whenever (i, j) is, because
    // `data.len() == rows * cols`.
    #[allow(clippy::indexing_slicing)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    // Same invariant as `Index`.
    #[allow(clippy::indexing_slicing)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_common::SintelRng;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]]));
    }

    #[test]
    fn matmul_dimension_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[vec![4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[vec![2.0, 3.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[vec![2.0, 4.0]]));
    }

    #[test]
    fn rows_cols_accessors() {
        let mut a = Matrix::zeros(2, 3);
        a.row_mut(1)[2] = 9.0;
        assert_eq!(a.row(1), &[0.0, 0.0, 9.0]);
        assert_eq!(a.col(2), vec![0.0, 9.0]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn row_iter_matches_row() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let rows: Vec<&[f64]> = m.row_iter().collect();
        assert_eq!(rows, vec![m.row(0), m.row(1)]);
        assert_eq!(Matrix::zeros(3, 0).row_iter().count(), 0);
        assert_eq!(Matrix::zeros(0, 3).row_iter().count(), 0);
    }

    /// The blocked-path decision at its exact flop boundary, for serial
    /// and parallel thread budgets (pure helper — no global state).
    #[test]
    fn blocked_threshold_boundary() {
        let t = Matrix::MATMUL_PAR_FLOPS;
        // Serial budget never takes the blocked path.
        for flops in [t - 1, t, t + 1] {
            assert!(!Matrix::matmul_uses_blocked(flops, 1));
        }
        // Parallel budget: the threshold is inclusive (`>=`).
        assert!(!Matrix::matmul_uses_blocked(t - 1, 2));
        assert!(Matrix::matmul_uses_blocked(t, 2));
        assert!(Matrix::matmul_uses_blocked(t + 1, 8));
    }

    /// Both kernels agree bitwise at real shapes that straddle the
    /// threshold: 1×1023·1023×1025 = 2^20−1, 1×1024·1024×1024 = 2^20,
    /// and 1×17·17×61681 = 2^20+1 flops.
    #[test]
    fn blocked_threshold_shapes_bitwise_identical() {
        let mut rng = SintelRng::seed_from_u64(0x2020);
        let t = Matrix::MATMUL_PAR_FLOPS;
        for (k, m, flops) in [(1023, 1025, t - 1), (1024, 1024, t), (17, 61681, t + 1)] {
            assert_eq!(k * m, flops, "shape arithmetic");
            let a = random_matrix(&mut rng, 1, k, 1.0);
            let b = random_matrix(&mut rng, k, m, 1.0);
            let mut scalar = Matrix::zeros(1, m);
            a.matmul_rows_scalar_into(&b, 0..1, scalar.as_mut_slice());
            let blocked = a.matmul_blocked(&b, Matrix::MATMUL_BLOCK_ROWS);
            let serial = {
                let mut out = Matrix::zeros(1, m);
                a.matmul_rows_into(&b, 0..1, out.as_mut_slice());
                out
            };
            for ((s, bl), se) in
                scalar.as_slice().iter().zip(blocked.as_slice()).zip(serial.as_slice())
            {
                assert_eq!(s.to_bits(), bl.to_bits());
                assert_eq!(s.to_bits(), se.to_bits());
            }
        }
    }

    /// Random `r x c` matrix with entries uniform in `[-scale, scale)`.
    fn random_matrix(rng: &mut SintelRng, r: usize, c: usize, scale: f64) -> Matrix {
        let data = (0..r * c).map(|_| rng.uniform_range(-scale, scale)).collect();
        Matrix::from_vec(r, c, data)
    }

    #[test]
    fn prop_transpose_preserves_frobenius() {
        let mut rng = SintelRng::seed_from_u64(0x1111);
        for _ in 0..256 {
            let (r, c) = (1 + rng.index(5), 1 + rng.index(5));
            let m = random_matrix(&mut rng, r, c, 100.0);
            assert!((m.frobenius() - m.transpose().frobenius()).abs() < 1e-9);
        }
    }

    #[test]
    fn prop_matmul_identity() {
        let mut rng = SintelRng::seed_from_u64(0x1112);
        for _ in 0..256 {
            let (r, c) = (1 + rng.index(5), 1 + rng.index(5));
            let m = random_matrix(&mut rng, r, c, 100.0);
            let i = Matrix::identity(m.cols());
            assert_eq!(m.matmul(&i).unwrap(), m);
        }
    }

    #[test]
    fn prop_transpose_of_product() {
        let mut rng = SintelRng::seed_from_u64(0x1113);
        for _ in 0..256 {
            let (r, k, c) = (1 + rng.index(4), 1 + rng.index(4), 1 + rng.index(4));
            let a = random_matrix(&mut rng, r, k, 10.0);
            let b = random_matrix(&mut rng, k, c, 10.0);
            // (AB)^T == B^T A^T
            let lhs = a.matmul(&b).unwrap().transpose();
            let rhs = b.transpose().matmul(&a.transpose()).unwrap();
            assert!(lhs.sub(&rhs).frobenius() < 1e-8);
        }
    }
}

//! Property-based suite for the linear-algebra kernels, built on
//! `sintel_common::check`. Every failure prints a replayable case seed;
//! rerun with `SINTEL_CHECK_SEED=<root>` to reproduce a whole suite run.

use sintel_common::check::{forall, shrinks, Config};
use sintel_common::SintelRng;
use sintel_linalg::{cholesky, solve_spd, Matrix};

/// Random matrix with entries in `[-2, 2]`.
fn random_matrix(rng: &mut SintelRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.uniform_range(-2.0, 2.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Random symmetric positive-definite matrix: `BᵀB + n·I`.
fn random_spd(rng: &mut SintelRng, n: usize) -> Matrix {
    let b = random_matrix(rng, n, n);
    let bt_b = b.transpose().matmul(&b).expect("square dims agree");
    bt_b.add(&Matrix::identity(n).scale(n as f64))
}

/// Frobenius norm of the elementwise difference.
fn frobenius_diff(a: &Matrix, b: &Matrix) -> f64 {
    a.sub(b).frobenius()
}

#[test]
fn matmul_is_associative_up_to_rounding() {
    forall(
        "matmul associativity (A·B)·C ≈ A·(B·C)",
        &Config::default(),
        |rng| {
            let (r, k, m, n) = (
                rng.int_range(1, 7) as usize,
                rng.int_range(1, 7) as usize,
                rng.int_range(1, 7) as usize,
                rng.int_range(1, 7) as usize,
            );
            (random_matrix(rng, r, k), random_matrix(rng, k, m), random_matrix(rng, m, n))
        },
        shrinks::none,
        |(a, b, c)| {
            let left = a.matmul(b).map_err(|e| e.to_string())?.matmul(c);
            let right = a.matmul(&b.matmul(c).map_err(|e| e.to_string())?);
            let left = left.map_err(|e| e.to_string())?;
            let right = right.map_err(|e| e.to_string())?;
            let scale = left.frobenius().max(1.0);
            let diff = frobenius_diff(&left, &right);
            if diff <= 1e-9 * scale {
                Ok(())
            } else {
                Err(format!("associativity violated: ‖(AB)C - A(BC)‖ = {diff:e}"))
            }
        },
    );
}

/// The row-blocked parallel path must agree *bitwise* with the serial
/// kernel for any block size — this is the determinism contract the
/// benchmark relies on, and the property that catches a broken blocking
/// scheme (wrong ranges, dropped remainder rows, reordered accumulation).
#[test]
fn matmul_blocked_matches_serial_bitwise_for_any_block_size() {
    forall(
        "matmul_blocked(A, B, block) == matmul serial path, bitwise",
        &Config::default(),
        |rng| {
            let (r, k, m) = (
                rng.int_range(1, 24) as usize,
                rng.int_range(1, 12) as usize,
                rng.int_range(1, 12) as usize,
            );
            let block = rng.int_range(1, 9) as usize;
            (random_matrix(rng, r, k), random_matrix(rng, k, m), block)
        },
        shrinks::none,
        |(a, b, block)| {
            let serial = a.matmul(b).map_err(|e| e.to_string())?;
            let blocked = a.matmul_blocked(b, *block);
            if serial.rows() != blocked.rows() || serial.cols() != blocked.cols() {
                return Err(format!(
                    "shape mismatch: serial {}x{}, blocked {}x{}",
                    serial.rows(),
                    serial.cols(),
                    blocked.rows(),
                    blocked.cols()
                ));
            }
            for (i, (s, p)) in
                serial.as_slice().iter().zip(blocked.as_slice()).enumerate()
            {
                if s.to_bits() != p.to_bits() {
                    return Err(format!(
                        "element {i} differs: serial {s:?} vs blocked {p:?} (block={block})"
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn spd_solve_round_trips_a_x_eq_b() {
    forall(
        "solve_spd(A, A·x) ≈ x for SPD A",
        &Config::default(),
        |rng| {
            let n = rng.int_range(1, 9) as usize;
            let a = random_spd(rng, n);
            let x: Vec<f64> = (0..n).map(|_| rng.uniform_range(-3.0, 3.0)).collect();
            (a, x)
        },
        shrinks::none,
        |(a, x)| {
            let b = a.matvec(x).map_err(|e| e.to_string())?;
            let solved = solve_spd(a, &b).map_err(|e| e.to_string())?;
            let err: f64 = solved
                .iter()
                .zip(x)
                .map(|(s, t)| (s - t).abs())
                .fold(0.0, f64::max);
            let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            if err <= 1e-7 * scale {
                Ok(())
            } else {
                Err(format!("round-trip error {err:e} exceeds tolerance"))
            }
        },
    );
}

#[test]
fn cholesky_factor_reconstructs_a() {
    forall(
        "cholesky(A) gives L with L·Lᵀ ≈ A",
        &Config::default(),
        |rng| {
            let n = rng.int_range(1, 9) as usize;
            random_spd(rng, n)
        },
        shrinks::none,
        |a| {
            let l = cholesky(a).map_err(|e| e.to_string())?;
            let rebuilt = l.matmul(&l.transpose()).map_err(|e| e.to_string())?;
            let diff = frobenius_diff(a, &rebuilt);
            let scale = a.frobenius().max(1.0);
            if diff <= 1e-9 * scale {
                Ok(())
            } else {
                Err(format!("‖L·Lᵀ - A‖ = {diff:e}"))
            }
        },
    );
}

#[test]
fn lu_solve_round_trips_a_x_eq_b() {
    forall(
        "Matrix::solve(A·x) ≈ x for well-conditioned A",
        &Config::default(),
        |rng| {
            let n = rng.int_range(1, 9) as usize;
            // Diagonally dominant => nonsingular and well conditioned.
            let mut a = random_matrix(rng, n, n);
            for i in 0..n {
                let boost = 4.0 * n as f64;
                let v = a.row(i)[i] + boost;
                a.row_mut(i)[i] = v;
            }
            let x: Vec<f64> = (0..n).map(|_| rng.uniform_range(-3.0, 3.0)).collect();
            (a, x)
        },
        shrinks::none,
        |(a, x)| {
            let b = a.matvec(x).map_err(|e| e.to_string())?;
            let solved = a.solve(&b).map_err(|e| e.to_string())?;
            let err: f64 = solved
                .iter()
                .zip(x)
                .map(|(s, t)| (s - t).abs())
                .fold(0.0, f64::max);
            if err <= 1e-7 {
                Ok(())
            } else {
                Err(format!("LU round-trip error {err:e}"))
            }
        },
    );
}

#[test]
fn transpose_is_an_involution() {
    forall(
        "A.transpose().transpose() == A, bitwise",
        &Config::default(),
        |rng| {
            let (r, c) = (rng.int_range(1, 16) as usize, rng.int_range(1, 16) as usize);
            random_matrix(rng, r, c)
        },
        shrinks::none,
        |a| {
            let round = a.transpose().transpose();
            if round.rows() != a.rows() || round.cols() != a.cols() {
                return Err("transpose round-trip changed shape".into());
            }
            for (i, (x, y)) in a.as_slice().iter().zip(round.as_slice()).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(format!("element {i} changed: {x:?} -> {y:?}"));
                }
            }
            Ok(())
        },
    );
}

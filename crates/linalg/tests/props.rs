//! Property-based suite for the linear-algebra kernels, built on
//! `sintel_common::check`. Every failure prints a replayable case seed;
//! rerun with `SINTEL_CHECK_SEED=<root>` to reproduce a whole suite run.

use sintel_common::check::{forall, shrinks, Config};
use sintel_common::SintelRng;
use sintel_linalg::{cholesky, solve_spd, Matrix};

/// Random matrix with entries in `[-2, 2]`.
fn random_matrix(rng: &mut SintelRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.uniform_range(-2.0, 2.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Random symmetric positive-definite matrix: `BᵀB + n·I`.
fn random_spd(rng: &mut SintelRng, n: usize) -> Matrix {
    let b = random_matrix(rng, n, n);
    let bt_b = b.transpose().matmul(&b).expect("square dims agree");
    bt_b.add(&Matrix::identity(n).scale(n as f64))
}

/// Frobenius norm of the elementwise difference.
fn frobenius_diff(a: &Matrix, b: &Matrix) -> f64 {
    a.sub(b).frobenius()
}

#[test]
fn matmul_is_associative_up_to_rounding() {
    forall(
        "matmul associativity (A·B)·C ≈ A·(B·C)",
        &Config::default(),
        |rng| {
            let (r, k, m, n) = (
                rng.int_range(1, 7) as usize,
                rng.int_range(1, 7) as usize,
                rng.int_range(1, 7) as usize,
                rng.int_range(1, 7) as usize,
            );
            (random_matrix(rng, r, k), random_matrix(rng, k, m), random_matrix(rng, m, n))
        },
        shrinks::none,
        |(a, b, c)| {
            let left = a.matmul(b).map_err(|e| e.to_string())?.matmul(c);
            let right = a.matmul(&b.matmul(c).map_err(|e| e.to_string())?);
            let left = left.map_err(|e| e.to_string())?;
            let right = right.map_err(|e| e.to_string())?;
            let scale = left.frobenius().max(1.0);
            let diff = frobenius_diff(&left, &right);
            if diff <= 1e-9 * scale {
                Ok(())
            } else {
                Err(format!("associativity violated: ‖(AB)C - A(BC)‖ = {diff:e}"))
            }
        },
    );
}

/// The row-blocked parallel path must agree *bitwise* with the serial
/// kernel for any block size — this is the determinism contract the
/// benchmark relies on, and the property that catches a broken blocking
/// scheme (wrong ranges, dropped remainder rows, reordered accumulation).
#[test]
fn matmul_blocked_matches_serial_bitwise_for_any_block_size() {
    forall(
        "matmul_blocked(A, B, block) == matmul serial path, bitwise",
        &Config::default(),
        |rng| {
            let (r, k, m) = (
                rng.int_range(1, 24) as usize,
                rng.int_range(1, 12) as usize,
                rng.int_range(1, 12) as usize,
            );
            let block = rng.int_range(1, 9) as usize;
            (random_matrix(rng, r, k), random_matrix(rng, k, m), block)
        },
        shrinks::none,
        |(a, b, block)| {
            let serial = a.matmul(b).map_err(|e| e.to_string())?;
            let blocked = a.matmul_blocked(b, *block);
            if serial.rows() != blocked.rows() || serial.cols() != blocked.cols() {
                return Err(format!(
                    "shape mismatch: serial {}x{}, blocked {}x{}",
                    serial.rows(),
                    serial.cols(),
                    blocked.rows(),
                    blocked.cols()
                ));
            }
            for (i, (s, p)) in
                serial.as_slice().iter().zip(blocked.as_slice()).enumerate()
            {
                if s.to_bits() != p.to_bits() {
                    return Err(format!(
                        "element {i} differs: serial {s:?} vs blocked {p:?} (block={block})"
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn spd_solve_round_trips_a_x_eq_b() {
    forall(
        "solve_spd(A, A·x) ≈ x for SPD A",
        &Config::default(),
        |rng| {
            let n = rng.int_range(1, 9) as usize;
            let a = random_spd(rng, n);
            let x: Vec<f64> = (0..n).map(|_| rng.uniform_range(-3.0, 3.0)).collect();
            (a, x)
        },
        shrinks::none,
        |(a, x)| {
            let b = a.matvec(x).map_err(|e| e.to_string())?;
            let solved = solve_spd(a, &b).map_err(|e| e.to_string())?;
            let err: f64 = solved
                .iter()
                .zip(x)
                .map(|(s, t)| (s - t).abs())
                .fold(0.0, f64::max);
            let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            if err <= 1e-7 * scale {
                Ok(())
            } else {
                Err(format!("round-trip error {err:e} exceeds tolerance"))
            }
        },
    );
}

#[test]
fn cholesky_factor_reconstructs_a() {
    forall(
        "cholesky(A) gives L with L·Lᵀ ≈ A",
        &Config::default(),
        |rng| {
            let n = rng.int_range(1, 9) as usize;
            random_spd(rng, n)
        },
        shrinks::none,
        |a| {
            let l = cholesky(a).map_err(|e| e.to_string())?;
            let rebuilt = l.matmul(&l.transpose()).map_err(|e| e.to_string())?;
            let diff = frobenius_diff(a, &rebuilt);
            let scale = a.frobenius().max(1.0);
            if diff <= 1e-9 * scale {
                Ok(())
            } else {
                Err(format!("‖L·Lᵀ - A‖ = {diff:e}"))
            }
        },
    );
}

#[test]
fn lu_solve_round_trips_a_x_eq_b() {
    forall(
        "Matrix::solve(A·x) ≈ x for well-conditioned A",
        &Config::default(),
        |rng| {
            let n = rng.int_range(1, 9) as usize;
            // Diagonally dominant => nonsingular and well conditioned.
            let mut a = random_matrix(rng, n, n);
            for i in 0..n {
                let boost = 4.0 * n as f64;
                let v = a.row(i)[i] + boost;
                a.row_mut(i)[i] = v;
            }
            let x: Vec<f64> = (0..n).map(|_| rng.uniform_range(-3.0, 3.0)).collect();
            (a, x)
        },
        shrinks::none,
        |(a, x)| {
            let b = a.matvec(x).map_err(|e| e.to_string())?;
            let solved = a.solve(&b).map_err(|e| e.to_string())?;
            let err: f64 = solved
                .iter()
                .zip(x)
                .map(|(s, t)| (s - t).abs())
                .fold(0.0, f64::max);
            if err <= 1e-7 {
                Ok(())
            } else {
                Err(format!("LU round-trip error {err:e}"))
            }
        },
    );
}

/// Random matrix with ~20% exact zeros, so the kernels' `a == 0.0`
/// skip path is exercised alongside the dense path.
fn random_sparse_matrix(rng: &mut SintelRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| if rng.index(5) == 0 { 0.0 } else { rng.uniform_range(-2.0, 2.0) })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Run the scalar reference kernel (the reduction-order specification
/// of DESIGN.md §4j) over all rows.
fn matmul_scalar_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    a.matmul_rows_scalar_into(b, 0..a.rows(), out.as_mut_slice());
    out
}

/// Run the vectorized lane kernel over all rows (the serial path of
/// `Matrix::matmul`).
fn matmul_lane_kernel(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    a.matmul_rows_into(b, 0..a.rows(), out.as_mut_slice());
    out
}

fn assert_bitwise(name: &str, want: &Matrix, got: &Matrix) -> Result<(), String> {
    for (i, (w, g)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        if w.to_bits() != g.to_bits() {
            return Err(format!("{name}: element {i} differs: reference {w:?} vs {g:?}"));
        }
    }
    Ok(())
}

/// The tentpole property: the lane-accumulator kernel is bitwise equal
/// to the scalar i-k-j reference at *every* shape — in particular at
/// remainder widths (`out_cols % MATMUL_LANES != 0`) and across the
/// `MATMUL_BLOCK_ROWS` boundary of the parallel path.
#[test]
fn lane_kernel_matches_scalar_reference_bitwise() {
    forall(
        "lane kernel == scalar reference, bitwise, any shape",
        &Config::default(),
        |rng| {
            let r = rng.int_range(1, 2 * Matrix::MATMUL_BLOCK_ROWS as i64 + 2) as usize;
            let k = rng.int_range(1, 12) as usize;
            // Half the cases force a remainder width; the rest roam,
            // covering exact multiples of the lane count too.
            let m = if rng.index(2) == 0 {
                let rem = 1 + rng.index(Matrix::MATMUL_LANES - 1);
                Matrix::MATMUL_LANES * rng.index(3) + rem
            } else {
                rng.int_range(1, 3 * Matrix::MATMUL_LANES as i64) as usize
            };
            (random_sparse_matrix(rng, r, k), random_sparse_matrix(rng, k, m))
        },
        shrinks::none,
        |(a, b)| {
            let reference = matmul_scalar_reference(a, b);
            assert_bitwise("serial lane kernel", &reference, &matmul_lane_kernel(a, b))?;
            // The production block size, and the boundary rows around it,
            // are covered because `r` roams past 2 * MATMUL_BLOCK_ROWS.
            let blocked = a.matmul_blocked(b, Matrix::MATMUL_BLOCK_ROWS);
            assert_bitwise("blocked lane kernel", &reference, &blocked)
        },
    );
}

/// MUTANT (for the harness-sensitivity proof below): a lane kernel
/// that forgets the remainder columns, leaving them zero.
fn mutant_dropped_remainder(a: &Matrix, b: &Matrix) -> Matrix {
    const LANES: usize = Matrix::MATMUL_LANES;
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let out_cols = b.cols();
    for (i, out_row) in out.as_mut_slice().chunks_exact_mut(out_cols.max(1)).enumerate() {
        let mut j = 0usize;
        for out_chunk in out_row.chunks_exact_mut(LANES) {
            let mut acc = [0.0f64; LANES];
            for (k, &v) in a.row(i).iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                for (acc_l, &b_l) in acc.iter_mut().zip(&b.row(k)[j..j + LANES]) {
                    *acc_l += v * b_l;
                }
            }
            out_chunk.copy_from_slice(&acc);
            j += LANES;
        }
        // BUG: remainder columns never computed.
    }
    out
}

/// MUTANT: accumulates `k` *descending* — same math over the reals,
/// different floating-point reduction order.
fn mutant_reordered_reduction(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let out_cols = b.cols();
    for (i, out_row) in out.as_mut_slice().chunks_exact_mut(out_cols.max(1)).enumerate() {
        for (k, &v) in a.row(i).iter().enumerate().rev() {
            if v == 0.0 {
                continue;
            }
            for (o, &b_l) in out_row.iter_mut().zip(b.row(k)) {
                *o += v * b_l;
            }
        }
    }
    out
}

/// Drive `forall` against a mutated kernel and return the panic report
/// it must produce.
fn catch_mutant_report(name: &'static str, mutant: fn(&Matrix, &Matrix) -> Matrix) -> String {
    let result = std::panic::catch_unwind(|| {
        forall(
            name,
            &Config::default(),
            |rng| {
                let r = rng.int_range(1, 10) as usize;
                let k = rng.int_range(3, 12) as usize;
                // Guaranteed remainder width so the dropped-remainder
                // mutant has something to drop.
                let m = Matrix::MATMUL_LANES * rng.index(2) + 1 + rng.index(Matrix::MATMUL_LANES - 1);
                (random_sparse_matrix(rng, r, k), random_sparse_matrix(rng, k, m))
            },
            shrinks::none,
            |(a, b)| assert_bitwise(name, &matmul_scalar_reference(a, b), &mutant(a, b)),
        )
    });
    let payload = result.expect_err("the mutated kernel must be caught by the property");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("forall panicked with an opaque payload");
    }
}

/// Extract `prefix <u64>` from a forall report.
fn parse_seed(report: &str, prefix: &str) -> u64 {
    let at = report.find(prefix).unwrap_or_else(|| panic!("report lacks `{prefix}`: {report}"));
    report[at + prefix.len()..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("unparseable seed after `{prefix}`: {report}"))
}

/// Seeded-mutation sensitivity proof: both kernel mutations are caught
/// by the bitwise property, the failure report carries a case seed and
/// a `SINTEL_CHECK_SEED` root, and replaying that exact seed fails
/// again — so a reported counterexample is reproducible forever.
#[test]
fn seeded_kernel_mutations_are_caught_and_replayable() {
    let mutants: [(&'static str, fn(&Matrix, &Matrix) -> Matrix); 2] = [
        ("MUTANT dropped remainder lane", mutant_dropped_remainder),
        ("MUTANT reordered accumulator reduction", mutant_reordered_reduction),
    ];
    for (name, mutant) in mutants {
        let report = catch_mutant_report(name, mutant);
        assert!(
            report.contains(sintel_common::check::CHECK_SEED_ENV),
            "report must tell the user how to replay the run: {report}"
        );
        let root = parse_seed(&report, "root seed ");
        let case = parse_seed(&report, "case seed ");
        assert_eq!(
            root,
            Config::default().seed,
            "the printed root must be the suite seed SINTEL_CHECK_SEED would set"
        );
        // Replay the single failing case from its derived seed alone.
        let (_, replayed) = sintel_common::check::replay(
            case,
            |rng| {
                let r = rng.int_range(1, 10) as usize;
                let k = rng.int_range(3, 12) as usize;
                let m = Matrix::MATMUL_LANES * rng.index(2) + 1 + rng.index(Matrix::MATMUL_LANES - 1);
                (random_sparse_matrix(rng, r, k), random_sparse_matrix(rng, k, m))
            },
            |(a, b): &(Matrix, Matrix)| {
                assert_bitwise(name, &matmul_scalar_reference(a, b), &mutant(a, b))
            },
        );
        assert!(replayed.is_err(), "replaying case seed {case} must fail again ({name})");
    }
}

#[test]
fn transpose_is_an_involution() {
    forall(
        "A.transpose().transpose() == A, bitwise",
        &Config::default(),
        |rng| {
            let (r, c) = (rng.int_range(1, 16) as usize, rng.int_range(1, 16) as usize);
            random_matrix(rng, r, c)
        },
        shrinks::none,
        |a| {
            let round = a.transpose().transpose();
            if round.rows() != a.rows() || round.cols() != a.cols() {
                return Err("transpose round-trip changed shape".into());
            }
            for (i, (x, y)) in a.as_slice().iter().zip(round.as_slice()).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(format!("element {i} changed: {x:?} -> {y:?}"));
                }
            }
            Ok(())
        },
    );
}

//! The deep architectures of the paper's pipeline hub.
//!
//! All models consume *flattened windows* — `window_size * channels`
//! values per sample, time-major (`[t0c0, t0c1, t1c0, …]`) — exactly what
//! [`sintel_timeseries::rolling_windows`] produces, so the pipeline layer
//! can hand data straight through.

mod dense_autoencoder;
mod lstm_autoencoder;
mod lstm_regressor;
mod tadgan;

pub use dense_autoencoder::DenseAutoencoder;
pub use lstm_autoencoder::LstmAutoencoder;
pub use lstm_regressor::LstmRegressor;
pub use tadgan::TadGan;

/// Shared training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training windows.
    pub epochs: usize,
    /// Mini-batch size (gradients averaged per batch).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Seed for shuffling and any model-internal sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 32, learning_rate: 0.005, seed: 0 }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests.
    pub fn fast_test() -> Self {
        Self { epochs: 15, batch_size: 16, learning_rate: 0.01, seed: 0 }
    }
}

/// Split a flat window back into per-step channel vectors.
pub(crate) fn unflatten(window: &[f64], channels: usize) -> Vec<Vec<f64>> {
    debug_assert_eq!(window.len() % channels, 0, "window not divisible by channels");
    window.chunks(channels).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unflatten_shapes() {
        let w = [1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        let steps = unflatten(&w, 2);
        assert_eq!(steps, vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]);
        let uni = unflatten(&w, 1);
        assert_eq!(uni.len(), 6);
    }

    #[test]
    fn default_config_sane() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0 && c.batch_size > 0 && c.learning_rate > 0.0);
    }
}

//! The Dense AE model: a plain feed-forward autoencoder over flattened
//! windows (the paper's lightest reconstruction pipeline).

use sintel_common::SintelRng;
use sintel_linalg::Matrix;

use crate::activation::Activation;
use crate::dense::Dense;
use crate::models::TrainConfig;
use crate::{NnError, Result};

/// Feed-forward autoencoder `in -> h -> z -> h -> in`.
#[derive(Debug, Clone)]
pub struct DenseAutoencoder {
    layers: Vec<Dense>,
    input_dim: usize,
}

impl DenseAutoencoder {
    /// Build with hidden size `hidden` and bottleneck `latent`.
    pub fn new(input_dim: usize, hidden: usize, latent: usize, seed: u64) -> Self {
        let mut rng = SintelRng::seed_from_u64(seed);
        let layers = vec![
            Dense::new(input_dim, hidden, Activation::Relu, &mut rng),
            Dense::new(hidden, latent, Activation::Linear, &mut rng),
            Dense::new(latent, hidden, Activation::Relu, &mut rng),
            Dense::new(hidden, input_dim, Activation::Linear, &mut rng),
        ];
        Self { layers, input_dim }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    fn check(&self, w: &[f64]) -> Result<()> {
        if w.len() != self.input_dim {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} values", self.input_dim),
                got: format!("{}", w.len()),
            });
        }
        Ok(())
    }

    fn forward_all(&self, x: &[f64]) -> Vec<Vec<f64>> {
        // activations[0] = input, activations[k] = output of layer k-1.
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for layer in &self.layers {
            let y = layer.forward(acts.last().expect("non-empty"));
            acts.push(y);
        }
        acts
    }

    /// Reconstruct a window.
    pub fn reconstruct(&self, window: &[f64]) -> Result<Vec<f64>> {
        self.check(window)?;
        Ok(self.forward_all(window).pop().expect("non-empty"))
    }

    /// Latent code of a window (bottleneck output).
    pub fn encode(&self, window: &[f64]) -> Result<Vec<f64>> {
        self.check(window)?;
        let mut acts = self.forward_all(window);
        acts.truncate(3); // input, h, z
        Ok(acts.pop().expect("non-empty"))
    }

    /// Train on windows (target = input); returns mean loss per epoch.
    pub fn fit(&mut self, windows: &Matrix, cfg: &TrainConfig) -> Result<Vec<f64>> {
        if windows.rows() == 0 {
            return Err(NnError::InsufficientData { needed: 1, got: 0 });
        }
        self.check(windows.row(0))?;
        let mut rng = SintelRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..windows.rows()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            if sintel_common::cancelled() {
                return Err(NnError::Cancelled);
            }
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(cfg.batch_size) {
                for &idx in chunk {
                    let x = windows.row(idx);
                    let acts = self.forward_all(x);
                    let y = acts.last().expect("non-empty");
                    let mut dy: Vec<f64> = y
                        .iter()
                        .zip(x.iter())
                        .map(|(p, t)| {
                            let d = p - t;
                            epoch_loss += d * d;
                            2.0 * d / x.len() as f64
                        })
                        .collect();
                    // Backprop through the stack.
                    for (k, layer) in self.layers.iter_mut().enumerate().rev() {
                        dy = layer.backward(&acts[k], &acts[k + 1], &dy);
                    }
                }
                for layer in &mut self.layers {
                    layer.step(cfg.learning_rate, chunk.len());
                }
            }
            epoch_losses.push(epoch_loss / (windows.rows() * self.input_dim) as f64);
        }
        Ok(epoch_losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_windows(n: usize, window: usize, period: f64) -> Matrix {
        let series: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / period).sin()).collect();
        let rows: Vec<Vec<f64>> =
            (0..n - window).map(|s| series[s..s + window].to_vec()).collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn loss_decreases_and_reconstruction_is_close() {
        let windows = sine_windows(300, 16, 25.0);
        let mut model = DenseAutoencoder::new(16, 12, 4, 9);
        let losses = model
            .fit(&windows, &TrainConfig { epochs: 60, ..TrainConfig::fast_test() })
            .unwrap();
        assert!(losses.last().unwrap() < &(losses[0] * 0.2), "{losses:?}");
        let rec = model.reconstruct(windows.row(5)).unwrap();
        let err: f64 = rec
            .iter()
            .zip(windows.row(5))
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 16.0;
        assert!(err < 0.25, "err {err}");
    }

    #[test]
    fn bottleneck_dimension() {
        let model = DenseAutoencoder::new(16, 8, 3, 0);
        let z = model.encode(&[0.2; 16]).unwrap();
        assert_eq!(z.len(), 3);
    }

    #[test]
    fn anomaly_scores_higher() {
        let windows = sine_windows(400, 16, 20.0);
        let mut model = DenseAutoencoder::new(16, 12, 4, 2);
        model
            .fit(&windows, &TrainConfig { epochs: 80, ..TrainConfig::fast_test() })
            .unwrap();
        let normal = &windows.row(11).to_vec();
        let mut weird = normal.clone();
        weird[8] += 4.0;
        let err = |w: &Vec<f64>| -> f64 {
            let r = model.reconstruct(w).unwrap();
            r.iter().zip(w).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        assert!(err(&weird) > err(normal) * 3.0);
    }

    #[test]
    fn shape_validation() {
        let mut model = DenseAutoencoder::new(8, 4, 2, 0);
        assert!(model.reconstruct(&[0.0; 3]).is_err());
        assert!(model.encode(&[0.0; 9]).is_err());
        assert!(model.fit(&Matrix::zeros(0, 8), &TrainConfig::fast_test()).is_err());
    }

    #[test]
    fn param_count_formula() {
        let model = DenseAutoencoder::new(10, 6, 2, 0);
        // (10*6+6) + (6*2+2) + (2*6+6) + (6*10+10) = 66+14+18+70
        assert_eq!(model.param_count(), 168);
    }
}

//! The LSTM AE model (Malhotra et al. [34]): a sequence-to-sequence
//! autoencoder. The encoder compresses the window into its final hidden
//! state; the decoder, fed that state at every step (RepeatVector style),
//! reconstructs the window. Reconstruction error feeds the dynamic
//! threshold downstream.

use sintel_common::SintelRng;
use sintel_linalg::Matrix;

use crate::activation::Activation;
use crate::dense::Dense;
use crate::lstm::Lstm;
use crate::models::{unflatten, TrainConfig};
use crate::{NnError, Result};

/// Sequence-to-sequence LSTM autoencoder.
#[derive(Debug, Clone)]
pub struct LstmAutoencoder {
    enc: Lstm,
    dec: Lstm,
    head: Dense,
    window: usize,
    channels: usize,
}

impl LstmAutoencoder {
    /// Build with the given window length, channel count and hidden size
    /// (the hidden state doubles as the latent code).
    pub fn new(window: usize, channels: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = SintelRng::seed_from_u64(seed);
        Self {
            enc: Lstm::new(channels, hidden, &mut rng),
            dec: Lstm::new(hidden, hidden, &mut rng),
            head: Dense::new(hidden, channels, Activation::Linear, &mut rng),
            window,
            channels,
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.enc.param_count() + self.dec.param_count() + self.head.param_count()
    }

    fn check_window(&self, w: &[f64]) -> Result<()> {
        if w.len() != self.window * self.channels {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} values", self.window * self.channels),
                got: format!("{}", w.len()),
            });
        }
        Ok(())
    }

    /// Reconstruct a window; returns the flattened reconstruction.
    pub fn reconstruct(&self, window: &[f64]) -> Result<Vec<f64>> {
        self.check_window(window)?;
        let xs = unflatten(window, self.channels);
        let enc_cache = self.enc.forward(&xs);
        let code = enc_cache.last_hidden().to_vec();
        let dec_inputs = vec![code; xs.len()];
        let dec_cache = self.dec.forward(&dec_inputs);
        let mut out = Vec::with_capacity(window.len());
        for h in dec_cache.hidden_states() {
            out.extend(self.head.forward(h));
        }
        Ok(out)
    }

    /// Train on windows (reconstruction target = input); returns mean
    /// loss per epoch.
    pub fn fit(&mut self, windows: &Matrix, cfg: &TrainConfig) -> Result<Vec<f64>> {
        if windows.rows() == 0 {
            return Err(NnError::InsufficientData { needed: 1, got: 0 });
        }
        self.check_window(windows.row(0))?;
        let hidden = self.enc.hidden_size();
        let mut rng = SintelRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..windows.rows()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            if sintel_common::cancelled() {
                return Err(NnError::Cancelled);
            }
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(cfg.batch_size) {
                for &idx in chunk {
                    let xs = unflatten(windows.row(idx), self.channels);
                    let t_len = xs.len();
                    let enc_cache = self.enc.forward(&xs);
                    let code = enc_cache.last_hidden().to_vec();
                    let dec_inputs = vec![code; t_len];
                    let dec_cache = self.dec.forward(&dec_inputs);

                    // Per-step reconstruction + gradient through the head.
                    let mut dh_dec = vec![vec![0.0; hidden]; t_len];
                    for t in 0..t_len {
                        let h = &dec_cache.hidden_states()[t];
                        let y = self.head.forward(h);
                        let mut dy = Vec::with_capacity(self.channels);
                        for c in 0..self.channels {
                            let err = y[c] - xs[t][c];
                            epoch_loss += err * err;
                            dy.push(2.0 * err / t_len as f64);
                        }
                        dh_dec[t] = self.head.backward(h, &y, &dy);
                    }
                    // Through the decoder; its input at every step is the
                    // code, so the code's gradient is the sum over steps.
                    let dxs_dec = self.dec.backward(&dec_cache, &dh_dec);
                    let mut dcode = vec![0.0; hidden];
                    for dx in &dxs_dec {
                        for (k, v) in dx.iter().enumerate() {
                            dcode[k] += v;
                        }
                    }
                    // Through the encoder (gradient only at the last step).
                    let mut dh_enc = vec![vec![0.0; hidden]; t_len];
                    dh_enc[t_len - 1] = dcode;
                    self.enc.backward(&enc_cache, &dh_enc);
                }
                self.enc.step(cfg.learning_rate, chunk.len());
                self.dec.step(cfg.learning_rate, chunk.len());
                self.head.step(cfg.learning_rate, chunk.len());
            }
            epoch_losses.push(epoch_loss / (windows.rows() * self.window) as f64);
        }
        Ok(epoch_losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_improves_with_training() {
        // Two distinct window shapes drawn from a sine.
        let n = 240;
        let series: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 20.0).sin()).collect();
        let window = 10;
        let rows: Vec<Vec<f64>> =
            (0..n - window).map(|s| series[s..s + window].to_vec()).collect();
        let windows = Matrix::from_rows(&rows);
        let mut model = LstmAutoencoder::new(window, 1, 8, 5);
        let losses = model.fit(&windows, &TrainConfig::fast_test()).unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not halve: first {} last {}",
            losses[0],
            losses.last().unwrap()
        );
        let rec = model.reconstruct(windows.row(3)).unwrap();
        assert_eq!(rec.len(), window);
        let err: f64 = rec
            .iter()
            .zip(windows.row(3))
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / window as f64;
        assert!(err < 0.4, "reconstruction error {err}");
    }

    #[test]
    fn anomalous_window_reconstructs_worse_than_normal() {
        let n = 300;
        let series: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 24.0).sin()).collect();
        let window = 12;
        let rows: Vec<Vec<f64>> =
            (0..n - window).map(|s| series[s..s + window].to_vec()).collect();
        let windows = Matrix::from_rows(&rows);
        let mut model = LstmAutoencoder::new(window, 1, 10, 6);
        model
            .fit(&windows, &TrainConfig { epochs: 25, ..TrainConfig::fast_test() })
            .unwrap();
        let normal = &windows.row(7).to_vec();
        let mut weird = normal.clone();
        for v in weird.iter_mut().take(6) {
            *v += 3.0; // inject a level shift the AE never saw
        }
        let err = |w: &Vec<f64>| {
            let r = model.reconstruct(w).unwrap();
            r.iter().zip(w).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
        };
        assert!(err(&weird) > 2.0 * err(normal), "weird {} normal {}", err(&weird), err(normal));
    }

    #[test]
    fn shape_validation() {
        let mut model = LstmAutoencoder::new(8, 1, 4, 0);
        assert!(model.reconstruct(&[0.0; 5]).is_err());
        assert!(model.fit(&Matrix::zeros(0, 8), &TrainConfig::fast_test()).is_err());
    }
}

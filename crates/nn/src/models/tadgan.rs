//! TadGAN (Geiger et al. [21]): adversarial reconstruction for anomaly
//! detection.
//!
//! Faithful to the original's architecture, four networks train
//! together:
//!
//! * encoder `E`: an LSTM over the window, projected to a latent code;
//! * generator `G`: the latent code repeated per step through an LSTM
//!   decoder, projected back to the signal space;
//! * critic `Cx`: an MLP judging windows (real vs generated);
//! * critic `Cz`: an MLP judging latent codes (prior vs encoded).
//!
//! Training alternates Wasserstein critic updates (weight clipping) with
//! encoder/generator updates driven by a cycle-consistency
//! reconstruction loss plus the adversarial terms. The anomaly score
//! blends reconstruction error with the critic's judgement
//! (`alpha * recon + (1 - alpha) * critic`), as in the original.
//!
//! Four networks, two of them recurrent, with multiple critic passes per
//! batch: this is by far the heaviest model in the hub, reproducing the
//! paper's computational-performance finding that TadGAN dominates both
//! training time and output latency (Figure 7a).

use sintel_common::SintelRng;

use sintel_linalg::Matrix;

use crate::activation::Activation;
use crate::dense::Dense;
use crate::lstm::Lstm;
use crate::models::{unflatten, TrainConfig};
use crate::{NnError, Result};

/// Number of critic updates per encoder/generator update (WGAN-style).
const N_CRITIC: usize = 3;
/// WGAN weight-clipping bound.
const CLIP: f64 = 0.1;
/// Weight of the cycle-consistency reconstruction loss.
const RECON_WEIGHT: f64 = 10.0;

/// A two-layer perceptron used for the two critics.
#[derive(Debug, Clone)]
struct Mlp {
    l1: Dense,
    l2: Dense,
}

impl Mlp {
    fn new(input: usize, hidden: usize, rng: &mut SintelRng) -> Self {
        Self {
            l1: Dense::new(input, hidden, Activation::LeakyRelu, rng),
            l2: Dense::new(hidden, 1, Activation::Linear, rng),
        }
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let h = self.l1.forward(x);
        let y = self.l2.forward(&h);
        (h, y)
    }

    /// Backward; returns dx. Gradients accumulate in both layers.
    fn backward(&mut self, x: &[f64], h: &[f64], y: &[f64], dy: &[f64]) -> Vec<f64> {
        let dh = self.l2.backward(h, y, dy);
        self.l1.backward(x, h, &dh)
    }

    fn step(&mut self, lr: f64, batch: usize) {
        self.l1.step(lr, batch);
        self.l2.step(lr, batch);
    }

    fn zero_grad(&mut self) {
        self.l1.zero_grad();
        self.l2.zero_grad();
    }

    fn clip_weights(&mut self, c: f64) {
        self.l1.clip_weights(c);
        self.l2.clip_weights(c);
    }

    fn param_count(&self) -> usize {
        self.l1.param_count() + self.l2.param_count()
    }
}

/// The TadGAN model over flattened windows.
pub struct TadGan {
    // Encoder: LSTM + projection to latent.
    enc_lstm: Lstm,
    enc_head: Dense,
    // Generator: LSTM decoder fed the repeated code + per-step output.
    gen_lstm: Lstm,
    gen_head: Dense,
    critic_x: Mlp,
    critic_z: Mlp,
    window: usize,
    channels: usize,
    latent: usize,
    seed: u64,
}

impl TadGan {
    /// Build for flattened windows of `window * channels` values, with
    /// LSTM hidden width `hidden` and latent size `latent`.
    pub fn new(window: usize, channels: usize, hidden: usize, latent: usize, seed: u64) -> Self {
        let mut rng = SintelRng::seed_from_u64(seed);
        let input_dim = window * channels;
        Self {
            enc_lstm: Lstm::new(channels, hidden, &mut rng),
            enc_head: Dense::new(hidden, latent, Activation::Linear, &mut rng),
            gen_lstm: Lstm::new(latent, hidden, &mut rng),
            gen_head: Dense::new(hidden, channels, Activation::Linear, &mut rng),
            critic_x: Mlp::new(input_dim, hidden, &mut rng),
            critic_z: Mlp::new(latent, hidden, &mut rng),
            window,
            channels,
            latent,
            seed,
        }
    }

    /// Total trainable parameters across the four networks.
    pub fn param_count(&self) -> usize {
        self.enc_lstm.param_count()
            + self.enc_head.param_count()
            + self.gen_lstm.param_count()
            + self.gen_head.param_count()
            + self.critic_x.param_count()
            + self.critic_z.param_count()
    }

    fn check(&self, w: &[f64]) -> Result<()> {
        if w.len() != self.window * self.channels {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} values", self.window * self.channels),
                got: format!("{}", w.len()),
            });
        }
        Ok(())
    }

    /// Encode a window to its latent code.
    fn encode(&self, window: &[f64]) -> Vec<f64> {
        let xs = unflatten(window, self.channels);
        let cache = self.enc_lstm.forward(&xs);
        self.enc_head.forward(cache.last_hidden())
    }

    /// Decode a latent code to a flattened window.
    fn decode(&self, z: &[f64]) -> Vec<f64> {
        let inputs = vec![z.to_vec(); self.window];
        let cache = self.gen_lstm.forward(&inputs);
        let mut out = Vec::with_capacity(self.window * self.channels);
        for h in cache.hidden_states() {
            out.extend(self.gen_head.forward(h));
        }
        out
    }

    /// Cycle reconstruction `G(E(x))`.
    pub fn reconstruct(&self, window: &[f64]) -> Result<Vec<f64>> {
        self.check(window)?;
        Ok(self.decode(&self.encode(window)))
    }

    /// Raw critic output for a window: *lower* means the critic finds the
    /// window less like the training data (more anomalous).
    pub fn critic_score(&self, window: &[f64]) -> Result<f64> {
        self.check(window)?;
        Ok(self.critic_x.forward(window).1[0])
    }

    /// Combined anomaly score: `alpha * recon_error + (1 - alpha) *
    /// (-critic)` on the given window.
    pub fn anomaly_score(&self, window: &[f64], alpha: f64) -> Result<f64> {
        let rec = self.reconstruct(window)?;
        let recon_err = rec
            .iter()
            .zip(window)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / window.len() as f64;
        let critic = self.critic_score(window)?;
        Ok(alpha * recon_err + (1.0 - alpha) * (-critic))
    }

    /// Encoder/generator backward pass for the reconstruction objective;
    /// accumulates gradients in all four E/G components and returns the
    /// per-window reconstruction MSE.
    fn backward_reconstruction(&mut self, window: &[f64]) -> f64 {
        let hidden = self.enc_lstm.hidden_size();
        let xs = unflatten(window, self.channels);
        let enc_cache = self.enc_lstm.forward(&xs);
        let z = self.enc_head.forward(enc_cache.last_hidden());
        let dec_inputs = vec![z.clone(); self.window];
        let dec_cache = self.gen_lstm.forward(&dec_inputs);

        let n = window.len() as f64;
        let mut recon = 0.0;
        let mut dh_dec = vec![vec![0.0; hidden]; self.window];
        for t in 0..self.window {
            let h = &dec_cache.hidden_states()[t];
            let y = self.gen_head.forward(h);
            let mut dy = Vec::with_capacity(self.channels);
            for c in 0..self.channels {
                let err = y[c] - xs[t][c];
                recon += err * err;
                dy.push(RECON_WEIGHT * 2.0 * err / n);
            }
            dh_dec[t] = self.gen_head.backward(h, &y, &dy);
        }
        let dxs_dec = self.gen_lstm.backward(&dec_cache, &dh_dec);
        let mut dz = vec![0.0; self.latent];
        for dx in &dxs_dec {
            for (k, v) in dx.iter().enumerate() {
                dz[k] += v;
            }
        }
        let dh_enc_last =
            self.enc_head.backward(enc_cache.last_hidden(), &z, &dz);
        let mut dh_enc = vec![vec![0.0; hidden]; xs.len()];
        dh_enc[xs.len() - 1] = dh_enc_last;
        self.enc_lstm.backward(&enc_cache, &dh_enc);
        recon / n
    }

    /// Adversarial training; returns the mean reconstruction loss per epoch.
    pub fn fit(&mut self, windows: &Matrix, cfg: &TrainConfig) -> Result<Vec<f64>> {
        if windows.rows() < 2 {
            return Err(NnError::InsufficientData { needed: 2, got: windows.rows() });
        }
        self.check(windows.row(0))?;
        let hidden = self.enc_lstm.hidden_size();
        let mut rng = SintelRng::seed_from_u64(cfg.seed ^ self.seed);
        let mut order: Vec<usize> = (0..windows.rows()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            if sintel_common::cancelled() {
                return Err(NnError::Cancelled);
            }
            rng.shuffle(&mut order);
            let mut epoch_recon = 0.0;
            for chunk in order.chunks(cfg.batch_size) {
                // ---- critic updates (E and G frozen: forwards only) ----
                for _ in 0..N_CRITIC {
                    for &idx in chunk {
                        let x = windows.row(idx);
                        let z_prior: Vec<f64> =
                            (0..self.latent).map(|_| rng.normal(0.0, 1.0)).collect();
                        // Cx: maximise Cx(x) - Cx(G(z)).
                        let (hx, yx) = self.critic_x.forward(x);
                        self.critic_x.backward(x, &hx, &yx, &[-1.0]);
                        let fake_x = self.decode(&z_prior);
                        let (hf, yf) = self.critic_x.forward(&fake_x);
                        self.critic_x.backward(&fake_x, &hf, &yf, &[1.0]);
                        // Cz: maximise Cz(z_prior) - Cz(E(x)).
                        let (hz, yz) = self.critic_z.forward(&z_prior);
                        self.critic_z.backward(&z_prior, &hz, &yz, &[-1.0]);
                        let enc_z = self.encode(x);
                        let (he, ye) = self.critic_z.forward(&enc_z);
                        self.critic_z.backward(&enc_z, &he, &ye, &[1.0]);
                    }
                    self.critic_x.step(cfg.learning_rate, chunk.len());
                    self.critic_z.step(cfg.learning_rate, chunk.len());
                    self.critic_x.clip_weights(CLIP);
                    self.critic_z.clip_weights(CLIP);
                }

                // ---- encoder / generator update ----
                for &idx in chunk {
                    let x = windows.row(idx);
                    epoch_recon += self.backward_reconstruction(x);

                    // Generator fools Cx: minimise -Cx(G(z_prior)).
                    let z_prior: Vec<f64> =
                        (0..self.latent).map(|_| rng.normal(0.0, 1.0)).collect();
                    let dec_inputs = vec![z_prior.clone(); self.window];
                    let dec_cache = self.gen_lstm.forward(&dec_inputs);
                    let mut fake_x = Vec::with_capacity(self.window * self.channels);
                    for h in dec_cache.hidden_states() {
                        fake_x.extend(self.gen_head.forward(h));
                    }
                    let (hc, yc) = self.critic_x.forward(&fake_x);
                    let dfake = self.critic_x.backward(&fake_x, &hc, &yc, &[-1.0]);
                    self.critic_x.zero_grad(); // critic frozen in this phase
                    let mut dh_dec = vec![vec![0.0; hidden]; self.window];
                    for t in 0..self.window {
                        let h = &dec_cache.hidden_states()[t];
                        let y = self.gen_head.forward(h);
                        let dy = &dfake[t * self.channels..(t + 1) * self.channels];
                        dh_dec[t] = self.gen_head.backward(h, &y, dy);
                    }
                    self.gen_lstm.backward(&dec_cache, &dh_dec);

                    // Encoder fools Cz: minimise -Cz(E(x)).
                    let xs = unflatten(x, self.channels);
                    let enc_cache = self.enc_lstm.forward(&xs);
                    let z2 = self.enc_head.forward(enc_cache.last_hidden());
                    let (hcz, ycz) = self.critic_z.forward(&z2);
                    let dz2 = self.critic_z.backward(&z2, &hcz, &ycz, &[-1.0]);
                    self.critic_z.zero_grad();
                    let dh_last =
                        self.enc_head.backward(enc_cache.last_hidden(), &z2, &dz2);
                    let mut dh_enc = vec![vec![0.0; hidden]; xs.len()];
                    dh_enc[xs.len() - 1] = dh_last;
                    self.enc_lstm.backward(&enc_cache, &dh_enc);
                }
                self.enc_lstm.step(cfg.learning_rate, chunk.len());
                self.enc_head.step(cfg.learning_rate, chunk.len());
                self.gen_lstm.step(cfg.learning_rate, chunk.len());
                self.gen_head.step(cfg.learning_rate, chunk.len());
            }
            epoch_losses.push(epoch_recon / windows.rows() as f64);
        }
        Ok(epoch_losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_windows(n: usize, window: usize, period: f64) -> Matrix {
        let series: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / period).sin()).collect();
        let rows: Vec<Vec<f64>> =
            (0..n - window).map(|s| series[s..s + window].to_vec()).collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn reconstruction_loss_decreases() {
        let windows = sine_windows(160, 12, 24.0);
        let mut model = TadGan::new(12, 1, 10, 4, 1);
        let losses = model
            .fit(
                &windows,
                &TrainConfig { epochs: 15, learning_rate: 0.01, ..TrainConfig::fast_test() },
            )
            .unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.6),
            "first {} last {}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn anomalous_window_scores_higher() {
        let windows = sine_windows(200, 12, 20.0);
        let mut model = TadGan::new(12, 1, 10, 4, 3);
        model
            .fit(
                &windows,
                &TrainConfig { epochs: 20, learning_rate: 0.01, ..TrainConfig::fast_test() },
            )
            .unwrap();
        let normal = &windows.row(9).to_vec();
        let mut weird = normal.clone();
        for v in weird.iter_mut().take(6) {
            *v += 3.5;
        }
        let s_normal = model.anomaly_score(normal, 0.7).unwrap();
        let s_weird = model.anomaly_score(&weird, 0.7).unwrap();
        assert!(s_weird > s_normal, "weird {s_weird} normal {s_normal}");
    }

    #[test]
    fn critic_clipping_keeps_outputs_bounded() {
        let windows = sine_windows(80, 8, 16.0);
        let mut model = TadGan::new(8, 1, 6, 3, 5);
        model.fit(&windows, &TrainConfig { epochs: 3, ..TrainConfig::fast_test() }).unwrap();
        for w in windows.row_iter() {
            let c = model.critic_score(w).unwrap();
            assert!(c.is_finite() && c.abs() < 100.0, "critic {c}");
        }
    }

    #[test]
    fn shape_validation() {
        let mut model = TadGan::new(8, 1, 6, 3, 0);
        assert!(model.reconstruct(&[0.0; 4]).is_err());
        assert!(model.critic_score(&[0.0; 9]).is_err());
        assert!(model.fit(&Matrix::from_rows(&[vec![0.0; 8]]), &TrainConfig::fast_test()).is_err());
    }

    #[test]
    fn multichannel_windows() {
        let mut model = TadGan::new(6, 2, 6, 3, 2);
        let rows: Vec<Vec<f64>> =
            (0..30).map(|k| (0..12).map(|i| ((k + i) as f64 * 0.3).sin()).collect()).collect();
        let windows = Matrix::from_rows(&rows);
        model.fit(&windows, &TrainConfig { epochs: 2, ..TrainConfig::fast_test() }).unwrap();
        let rec = model.reconstruct(windows.row(0)).unwrap();
        assert_eq!(rec.len(), 12);
    }
}

//! The LSTM DT model (Hundman et al. [24]): a double-stacked LSTM that
//! predicts the next value of the signal from a rolling window. The
//! pipeline computes `regression_errors = |x̂ - x|` downstream and feeds
//! them to the dynamic threshold.

use sintel_common::SintelRng;

use crate::activation::Activation;
use crate::dense::Dense;
use crate::lstm::Lstm;
use crate::models::{unflatten, TrainConfig};
use crate::{NnError, Result};

/// Double-stacked LSTM next-value predictor.
#[derive(Debug, Clone)]
pub struct LstmRegressor {
    l1: Lstm,
    l2: Lstm,
    head: Dense,
    window: usize,
    channels: usize,
}

impl LstmRegressor {
    /// Build with the given window length, channel count and hidden size.
    pub fn new(window: usize, channels: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = SintelRng::seed_from_u64(seed);
        Self {
            l1: Lstm::new(channels, hidden, &mut rng),
            l2: Lstm::new(hidden, hidden, &mut rng),
            head: Dense::new(hidden, 1, Activation::Linear, &mut rng),
            window,
            channels,
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.l1.param_count() + self.l2.param_count() + self.head.param_count()
    }

    fn check_window(&self, w: &[f64]) -> Result<()> {
        if w.len() != self.window * self.channels {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} values", self.window * self.channels),
                got: format!("{}", w.len()),
            });
        }
        Ok(())
    }

    /// Predict the value following the window (first channel).
    pub fn predict(&self, window: &[f64]) -> Result<f64> {
        self.check_window(window)?;
        let xs = unflatten(window, self.channels);
        let c1 = self.l1.forward(&xs);
        let c2 = self.l2.forward(c1.hidden_states());
        Ok(self.head.forward(c2.last_hidden())[0])
    }

    /// Windows-per-batch threshold above which [`Self::predict_batch`]
    /// fans out across threads; the forward pass for one window is
    /// cheap, so small batches stay serial.
    const PREDICT_PAR_WINDOWS: usize = 64;

    /// Predict the next value for every window of a batch.
    ///
    /// Shapes are validated up front so a bad window fails the whole
    /// batch before any work runs; each prediction is then a pure
    /// `&self` forward pass, parallelised above
    /// [`Self::PREDICT_PAR_WINDOWS`] windows with results collected in
    /// input order — bitwise-identical to the serial loop.
    pub fn predict_batch(&self, windows: &[Vec<f64>]) -> Result<Vec<f64>> {
        for w in windows {
            self.check_window(w)?;
        }
        let forward = |i: usize| -> f64 {
            // In range: `i` comes from `0..windows.len()`.
            #[allow(clippy::indexing_slicing)]
            let xs = unflatten(&windows[i], self.channels);
            let c1 = self.l1.forward(&xs);
            let c2 = self.l2.forward(c1.hidden_states());
            self.head.forward(c2.last_hidden())[0]
        };
        if windows.len() >= Self::PREDICT_PAR_WINDOWS
            && sintel_common::configured_threads() > 1
        {
            Ok(sintel_common::par_map(windows.len(), forward))
        } else {
            Ok((0..windows.len()).map(forward).collect())
        }
    }

    /// Train on `(window, next value)` pairs; returns the mean training
    /// loss per epoch.
    pub fn fit(
        &mut self,
        windows: &[Vec<f64>],
        targets: &[f64],
        cfg: &TrainConfig,
    ) -> Result<Vec<f64>> {
        if windows.len() != targets.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} targets", windows.len()),
                got: format!("{}", targets.len()),
            });
        }
        if windows.is_empty() {
            return Err(NnError::InsufficientData { needed: 1, got: 0 });
        }
        for w in windows {
            self.check_window(w)?;
        }
        let hidden = self.l1.hidden_size();
        let mut rng = SintelRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..windows.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            // Cooperative cancellation: a watchdogged run whose budget
            // expired must stop burning CPU, not finish all epochs.
            if sintel_common::cancelled() {
                return Err(NnError::Cancelled);
            }
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(cfg.batch_size) {
                for &idx in chunk {
                    let xs = unflatten(&windows[idx], self.channels);
                    let c1 = self.l1.forward(&xs);
                    let c2 = self.l2.forward(c1.hidden_states());
                    let y = self.head.forward(c2.last_hidden());
                    let err = y[0] - targets[idx];
                    epoch_loss += err * err;

                    // Backward: head -> top LSTM (last step) -> bottom LSTM.
                    let dlast = self.head.backward(c2.last_hidden(), &y, &[2.0 * err]);
                    let mut dh2 = vec![vec![0.0; hidden]; xs.len()];
                    dh2[xs.len() - 1] = dlast;
                    let dh1 = self.l2.backward(&c2, &dh2);
                    self.l1.backward(&c1, &dh1);
                }
                self.l1.step(cfg.learning_rate, chunk.len());
                self.l2.step(cfg.learning_rate, chunk.len());
                self.head.step(cfg.learning_rate, chunk.len());
            }
            epoch_losses.push(epoch_loss / windows.len() as f64);
        }
        Ok(epoch_losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Windows over a clean sine: the regressor must learn to predict the
    /// next sample far better than predicting the mean.
    #[test]
    fn learns_sine_continuation() {
        let n = 300;
        let series: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 25.0).sin()).collect();
        let window = 12;
        let mut windows = Vec::new();
        let mut targets = Vec::new();
        for start in 0..(n - window - 1) {
            windows.push(series[start..start + window].to_vec());
            targets.push(series[start + window]);
        }
        let mut model = LstmRegressor::new(window, 1, 10, 3);
        let losses = model.fit(&windows, &targets, &TrainConfig::fast_test()).unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.2),
            "loss did not drop: {losses:?}"
        );
        // Point predictions are close.
        let mut err = 0.0;
        for (w, t) in windows.iter().zip(&targets) {
            let p = model.predict(w).unwrap();
            err += (p - t).abs();
        }
        err /= windows.len() as f64;
        assert!(err < 0.15, "mean abs error {err}");
    }

    #[test]
    fn shape_errors() {
        let mut model = LstmRegressor::new(8, 1, 4, 0);
        assert!(model.predict(&[0.0; 7]).is_err());
        assert!(model.fit(&[vec![0.0; 8]], &[1.0, 2.0], &TrainConfig::fast_test()).is_err());
        assert!(model.fit(&[], &[], &TrainConfig::fast_test()).is_err());
    }

    #[test]
    fn deterministic_from_seed() {
        let a = LstmRegressor::new(6, 1, 4, 42);
        let b = LstmRegressor::new(6, 1, 4, 42);
        let w = vec![0.1; 6];
        assert_eq!(a.predict(&w).unwrap(), b.predict(&w).unwrap());
    }

    #[test]
    fn multichannel_input() {
        let model = LstmRegressor::new(4, 2, 3, 1);
        let w = vec![0.1; 8];
        assert!(model.predict(&w).unwrap().is_finite());
    }

    #[test]
    fn predict_batch_matches_serial_predict_bitwise() {
        let model = LstmRegressor::new(6, 1, 4, 9);
        let mut rng = SintelRng::seed_from_u64(77);
        // Cross the parallel threshold so both code paths are exercised.
        let windows: Vec<Vec<f64>> = (0..LstmRegressor::PREDICT_PAR_WINDOWS + 8)
            .map(|_| (0..6).map(|_| rng.uniform_range(-1.0, 1.0)).collect())
            .collect();
        let batch = model.predict_batch(&windows).unwrap();
        assert_eq!(batch.len(), windows.len());
        for (w, &b) in windows.iter().zip(&batch) {
            assert_eq!(model.predict(w).unwrap().to_bits(), b.to_bits());
        }
        // A single bad window fails the whole batch up front.
        let mut bad = windows.clone();
        bad[3] = vec![0.0; 5];
        assert!(model.predict_batch(&bad).is_err());
    }
}

//! The LSTM DT model (Hundman et al. [24]): a double-stacked LSTM that
//! predicts the next value of the signal from a rolling window. The
//! pipeline computes `regression_errors = |x̂ - x|` downstream and feeds
//! them to the dynamic threshold.

use sintel_common::SintelRng;
use sintel_linalg::Matrix;

use crate::activation::Activation;
use crate::dense::Dense;
use crate::lstm::{Lstm, LstmState};
use crate::models::{unflatten, TrainConfig};
use crate::{NnError, Result};

/// Double-stacked LSTM next-value predictor.
#[derive(Debug, Clone)]
pub struct LstmRegressor {
    l1: Lstm,
    l2: Lstm,
    head: Dense,
    window: usize,
    channels: usize,
}

/// Reusable buffers for one inference stream through the stacked
/// network (DESIGN.md §4j): every window of a batch runs through the
/// same scratch, so a batch costs O(1) allocations, not O(windows).
struct PredictScratch {
    s1: LstmState,
    s2: LstmState,
    /// Flat hidden sequence out of the first layer (`window * hidden`).
    hs1: Vec<f64>,
    /// Head output (a single predicted value).
    y: Vec<f64>,
}

impl LstmRegressor {
    /// Build with the given window length, channel count and hidden size.
    pub fn new(window: usize, channels: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = SintelRng::seed_from_u64(seed);
        Self {
            l1: Lstm::new(channels, hidden, &mut rng),
            l2: Lstm::new(hidden, hidden, &mut rng),
            head: Dense::new(hidden, 1, Activation::Linear, &mut rng),
            window,
            channels,
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.l1.param_count() + self.l2.param_count() + self.head.param_count()
    }

    fn check_window(&self, w: &[f64]) -> Result<()> {
        if w.len() != self.window * self.channels {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} values", self.window * self.channels),
                got: format!("{}", w.len()),
            });
        }
        Ok(())
    }

    /// Fresh per-batch scratch: both layer states, the flat hidden
    /// sequence between them, and the head output.
    fn scratch(&self) -> PredictScratch {
        PredictScratch {
            s1: self.l1.state(),
            s2: self.l2.state(),
            hs1: Vec::with_capacity(self.window * self.l1.hidden_size()),
            y: vec![0.0; 1],
        }
    }

    /// One forward pass on the flat inference path, reusing `scratch`.
    /// Bitwise-identical to the cache-path forward used in training:
    /// both run the same fused LSTM step and Dense kernel.
    fn predict_with(&self, window: &[f64], scratch: &mut PredictScratch) -> f64 {
        self.l1.forward_flat(window, &mut scratch.s1, Some(&mut scratch.hs1));
        self.l2.forward_flat(&scratch.hs1, &mut scratch.s2, None);
        self.head.forward_into(scratch.s2.hidden(), &mut scratch.y);
        // In range: the head is built with out_dim 1.
        #[allow(clippy::indexing_slicing)]
        scratch.y[0]
    }

    /// Predict the value following the window (first channel).
    pub fn predict(&self, window: &[f64]) -> Result<f64> {
        self.check_window(window)?;
        Ok(self.predict_with(window, &mut self.scratch()))
    }

    /// Windows-per-batch threshold above which [`Self::predict_batch`]
    /// fans out across threads; the forward pass for one window is
    /// cheap, so small batches stay serial.
    const PREDICT_PAR_WINDOWS: usize = 64;

    /// Window count per parallel work item. Fixed (never derived from
    /// the thread count) so the decomposition — and the scratch-buffer
    /// grouping — is a function of the input alone, per the
    /// determinism contract.
    const PREDICT_BLOCK_WINDOWS: usize = 32;

    /// Predict the next value for every window of a batch.
    ///
    /// The shared shape is validated once up front so a bad batch fails
    /// before any work runs. Each prediction is a pure `&self` forward
    /// pass on the flat inference path; the batch performs O(1)
    /// allocations — one scratch per fixed-size block — instead of
    /// O(windows). Above [`Self::PREDICT_PAR_WINDOWS`] windows the
    /// blocks fan out across threads with results collected in input
    /// order, bitwise-identical to the serial loop.
    pub fn predict_batch(&self, windows: &Matrix) -> Result<Vec<f64>> {
        let n = windows.rows();
        if n == 0 {
            return Ok(Vec::new());
        }
        if windows.cols() != self.window * self.channels {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} values per window", self.window * self.channels),
                got: format!("{}", windows.cols()),
            });
        }
        if n >= Self::PREDICT_PAR_WINDOWS && sintel_common::configured_threads() > 1 {
            let ranges = sintel_common::par::block_ranges(n, Self::PREDICT_BLOCK_WINDOWS);
            let blocks = sintel_common::par_map(ranges.len(), |b| {
                // In range: `b` comes from `0..ranges.len()`.
                #[allow(clippy::indexing_slicing)]
                let range = ranges[b].clone();
                let mut scratch = self.scratch();
                let mut out = Vec::with_capacity(range.len());
                for i in range {
                    out.push(self.predict_with(windows.row(i), &mut scratch));
                }
                out
            });
            let mut out = Vec::with_capacity(n);
            for block in blocks {
                out.extend_from_slice(&block);
            }
            Ok(out)
        } else {
            let mut scratch = self.scratch();
            let mut out = Vec::with_capacity(n);
            for w in windows.row_iter() {
                out.push(self.predict_with(w, &mut scratch));
            }
            Ok(out)
        }
    }

    /// Train on `(window, next value)` pairs; returns the mean training
    /// loss per epoch.
    pub fn fit(
        &mut self,
        windows: &Matrix,
        targets: &[f64],
        cfg: &TrainConfig,
    ) -> Result<Vec<f64>> {
        if windows.rows() != targets.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} targets", windows.rows()),
                got: format!("{}", targets.len()),
            });
        }
        if windows.rows() == 0 {
            return Err(NnError::InsufficientData { needed: 1, got: 0 });
        }
        self.check_window(windows.row(0))?;
        let hidden = self.l1.hidden_size();
        let mut rng = SintelRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..windows.rows()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            // Cooperative cancellation: a watchdogged run whose budget
            // expired must stop burning CPU, not finish all epochs.
            if sintel_common::cancelled() {
                return Err(NnError::Cancelled);
            }
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(cfg.batch_size) {
                for &idx in chunk {
                    let xs = unflatten(windows.row(idx), self.channels);
                    let c1 = self.l1.forward(&xs);
                    let c2 = self.l2.forward(c1.hidden_states());
                    let y = self.head.forward(c2.last_hidden());
                    let err = y[0] - targets[idx];
                    epoch_loss += err * err;

                    // Backward: head -> top LSTM (last step) -> bottom LSTM.
                    let dlast = self.head.backward(c2.last_hidden(), &y, &[2.0 * err]);
                    let mut dh2 = vec![vec![0.0; hidden]; xs.len()];
                    dh2[xs.len() - 1] = dlast;
                    let dh1 = self.l2.backward(&c2, &dh2);
                    self.l1.backward(&c1, &dh1);
                }
                self.l1.step(cfg.learning_rate, chunk.len());
                self.l2.step(cfg.learning_rate, chunk.len());
                self.head.step(cfg.learning_rate, chunk.len());
            }
            epoch_losses.push(epoch_loss / windows.rows() as f64);
        }
        Ok(epoch_losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Windows over a clean sine: the regressor must learn to predict the
    /// next sample far better than predicting the mean.
    #[test]
    fn learns_sine_continuation() {
        let n = 300;
        let series: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 25.0).sin()).collect();
        let window = 12;
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for start in 0..(n - window - 1) {
            rows.push(series[start..start + window].to_vec());
            targets.push(series[start + window]);
        }
        let windows = Matrix::from_rows(&rows);
        let mut model = LstmRegressor::new(window, 1, 10, 3);
        let losses = model.fit(&windows, &targets, &TrainConfig::fast_test()).unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.2),
            "loss did not drop: {losses:?}"
        );
        // Point predictions are close.
        let mut err = 0.0;
        for (w, t) in windows.row_iter().zip(&targets) {
            let p = model.predict(w).unwrap();
            err += (p - t).abs();
        }
        err /= windows.rows() as f64;
        assert!(err < 0.15, "mean abs error {err}");
    }

    #[test]
    fn shape_errors() {
        let mut model = LstmRegressor::new(8, 1, 4, 0);
        assert!(model.predict(&[0.0; 7]).is_err());
        let one = Matrix::from_rows(&[vec![0.0; 8]]);
        assert!(model.fit(&one, &[1.0, 2.0], &TrainConfig::fast_test()).is_err());
        assert!(model.fit(&Matrix::zeros(0, 8), &[], &TrainConfig::fast_test()).is_err());
        // Wrong window width fails fit and predict_batch up front.
        let bad = Matrix::from_rows(&[vec![0.0; 5]]);
        assert!(model.fit(&bad, &[1.0], &TrainConfig::fast_test()).is_err());
        assert!(model.predict_batch(&bad).is_err());
    }

    #[test]
    fn deterministic_from_seed() {
        let a = LstmRegressor::new(6, 1, 4, 42);
        let b = LstmRegressor::new(6, 1, 4, 42);
        let w = vec![0.1; 6];
        assert_eq!(a.predict(&w).unwrap(), b.predict(&w).unwrap());
    }

    #[test]
    fn multichannel_input() {
        let model = LstmRegressor::new(4, 2, 3, 1);
        let w = vec![0.1; 8];
        assert!(model.predict(&w).unwrap().is_finite());
    }

    #[test]
    fn predict_batch_matches_serial_predict_bitwise() {
        let model = LstmRegressor::new(6, 1, 4, 9);
        let mut rng = SintelRng::seed_from_u64(77);
        // Cross the parallel threshold (and a partial trailing block)
        // so both code paths and the remainder range are exercised.
        let rows: Vec<Vec<f64>> = (0..LstmRegressor::PREDICT_PAR_WINDOWS + 9)
            .map(|_| (0..6).map(|_| rng.uniform_range(-1.0, 1.0)).collect())
            .collect();
        let windows = Matrix::from_rows(&rows);
        let batch = model.predict_batch(&windows).unwrap();
        assert_eq!(batch.len(), windows.rows());
        for (w, &b) in windows.row_iter().zip(&batch) {
            assert_eq!(model.predict(w).unwrap().to_bits(), b.to_bits());
        }
        assert!(model.predict_batch(&Matrix::zeros(0, 6)).unwrap().is_empty());
    }
}

#![warn(missing_docs)]
// Hot kernels iterate, they don't index-by-range: a `for i in 0..n`
// over a single slice defeats bounds-check elision and hides the
// access pattern from the vectorizer. Verified by `scripts/verify.sh`.
#![deny(clippy::needless_range_loop)]

//! # sintel-nn
//!
//! From-scratch neural-network substrate for the Sintel reproduction —
//! the stand-in for the Keras/TensorFlow models the Python stack uses
//! (see DESIGN.md §2).
//!
//! The crate provides exactly what the paper's pipeline hub needs:
//!
//! * [`dense::Dense`] — fully-connected layer with hand-derived backprop;
//! * [`lstm::Lstm`] — an LSTM layer with full backpropagation-through-time
//!   (validated against numerical gradients in the test suite);
//! * [`adam::Adam`] — the Adam optimiser;
//! * [`models`] — the four deep architectures of the evaluation:
//!   [`models::LstmRegressor`] (LSTM DT [24]),
//!   [`models::LstmAutoencoder`] (LSTM AE [34]),
//!   [`models::DenseAutoencoder`] (Dense AE), and
//!   [`models::TadGan`] (TadGAN [21], adversarial reconstruction with
//!   Wasserstein critics).
//!
//! Everything is `f64`, deterministic from a seed, and sized for CPU
//! training; relative compute/quality orderings of the paper are
//! preserved (TadGAN slowest, reconstruction models heavier than
//! prediction ones).

pub mod activation;
pub mod adam;
pub mod dense;
pub mod loss;
pub mod lstm;
pub mod models;

pub use activation::Activation;
pub use adam::Adam;
pub use dense::Dense;
pub use lstm::{Lstm, LstmState};
pub use models::{DenseAutoencoder, LstmAutoencoder, LstmRegressor, TadGan, TrainConfig};

/// Errors produced by model training / inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Shape mismatch between data and the network configuration.
    ShapeMismatch {
        /// What the network was configured for.
        expected: String,
        /// What the data provided.
        got: String,
    },
    /// Not enough training data for the requested configuration.
    InsufficientData {
        /// Minimum sample count required.
        needed: usize,
        /// Samples actually available.
        got: usize,
    },
    /// Invalid hyperparameter.
    InvalidParameter(String),
    /// Training was cancelled by a watchdog (`sintel_common::cancel`):
    /// the run budget expired and the epoch loop bailed out early.
    Cancelled,
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            NnError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed}, got {got}")
            }
            NnError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            NnError::Cancelled => write!(f, "training cancelled by run budget"),
        }
    }
}

impl std::error::Error for NnError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NnError>;

//! Loss functions used by the training loops.

/// Mean-squared-error loss and its gradient for one sample:
/// returns `(loss, dLoss/dPred)` where loss = `mean((p - t)^2)`.
pub fn mse_loss(pred: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), target.len(), "mse: length mismatch");
    assert!(!pred.is_empty(), "mse: empty input");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let mut grad = Vec::with_capacity(pred.len());
    for (p, t) in pred.iter().zip(target) {
        let d = p - t;
        loss += d * d;
        grad.push(2.0 * d / n);
    }
    (loss / n, grad)
}

/// Binary cross-entropy on a sigmoid output `p ∈ (0, 1)`:
/// returns `(loss, dLoss/dp)` for scalar prediction/target.
pub fn bce_loss(p: f64, target: f64) -> (f64, f64) {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    let loss = -(target * p.ln() + (1.0 - target) * (1.0 - p).ln());
    let grad = (p - target) / (p * (1.0 - p));
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known() {
        let (l, g) = mse_loss(&[1.0, 3.0], &[1.0, 1.0]);
        assert_eq!(l, 2.0);
        assert_eq!(g, vec![0.0, 2.0]);
    }

    #[test]
    fn mse_zero_at_target() {
        let (l, g) = mse_loss(&[0.5], &[0.5]);
        assert_eq!(l, 0.0);
        assert_eq!(g, vec![0.0]);
    }

    #[test]
    fn mse_grad_matches_finite_difference() {
        let pred = [0.3, -0.8, 1.2];
        let target = [0.0, 0.0, 1.0];
        let (_, grad) = mse_loss(&pred, &target);
        let eps = 1e-6;
        for i in 0..pred.len() {
            let mut p = pred;
            p[i] += eps;
            let (lp, _) = mse_loss(&p, &target);
            p[i] -= 2.0 * eps;
            let (lm, _) = mse_loss(&p, &target);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn bce_extremes_and_gradient() {
        let (l, _) = bce_loss(0.999, 1.0);
        assert!(l < 0.01);
        let (l, _) = bce_loss(0.001, 1.0);
        assert!(l > 5.0);
        // Finite-difference gradient check away from the clamp.
        let eps = 1e-7;
        let (_, g) = bce_loss(0.3, 1.0);
        let (lp, _) = bce_loss(0.3 + eps, 1.0);
        let (lm, _) = bce_loss(0.3 - eps, 1.0);
        assert!(((lp - lm) / (2.0 * eps) - g).abs() < 1e-5);
    }
}

//! LSTM layer with full backpropagation through time.
//!
//! Gate layout follows the classic formulation:
//!
//! ```text
//! z_t = W · [x_t ; h_{t-1} ; 1]          (4H rows: i, f, g, o)
//! i = σ(z_i)   f = σ(z_f)   g = tanh(z_g)   o = σ(z_o)
//! c_t = f ⊙ c_{t-1} + i ⊙ g
//! h_t = o ⊙ tanh(c_t)
//! ```
//!
//! The backward pass is hand-derived and validated against numerical
//! gradients in the test suite — the single most important test in this
//! crate, since every deep pipeline trains through it.

use sintel_common::SintelRng;

use crate::activation::sigmoid;
use crate::adam::Adam;

/// An LSTM layer mapping an input sequence to a hidden-state sequence.
#[derive(Debug, Clone)]
pub struct Lstm {
    input_dim: usize,
    hidden: usize,
    /// Weights, row-major `(4H x (I + H + 1))`; the final column is the bias.
    w: Vec<f64>,
    gw: Vec<f64>,
    adam: Adam,
}

/// Saved activations from a forward pass, needed for BPTT.
#[derive(Debug, Clone)]
pub struct LstmCache {
    /// Inputs per step.
    xs: Vec<Vec<f64>>,
    /// Gate activations per step: `[i, f, g, o]` each of length H.
    gates: Vec<Vec<f64>>,
    /// Cell states per step.
    cs: Vec<Vec<f64>>,
    /// Hidden states per step.
    hs: Vec<Vec<f64>>,
}

impl LstmCache {
    /// Hidden state sequence (one vector per time step).
    pub fn hidden_states(&self) -> &[Vec<f64>] {
        &self.hs
    }

    /// Final hidden state (panics on empty sequences).
    pub fn last_hidden(&self) -> &[f64] {
        self.hs.last().expect("non-empty sequence")
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.hs.len()
    }

    /// True for zero-length sequences.
    pub fn is_empty(&self) -> bool {
        self.hs.is_empty()
    }
}

impl Lstm {
    /// Create with Xavier-uniform weights (forget-gate bias +1 for
    /// healthy gradient flow early in training).
    pub fn new(input_dim: usize, hidden: usize, rng: &mut SintelRng) -> Self {
        assert!(input_dim > 0 && hidden > 0, "lstm dims must be positive");
        let cols = input_dim + hidden + 1;
        let rows = 4 * hidden;
        let bound = (6.0 / (input_dim + 2 * hidden) as f64).sqrt();
        let mut w: Vec<f64> =
            (0..rows * cols).map(|_| rng.uniform_range(-bound, bound)).collect();
        // Forget-gate bias (+1): rows H..2H, last column.
        for r in hidden..2 * hidden {
            w[r * cols + cols - 1] = 1.0;
        }
        Self { input_dim, hidden, gw: vec![0.0; rows * cols], w, adam: Adam::new(rows * cols) }
    }

    /// Hidden size.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Input size.
    pub fn input_size(&self) -> usize {
        self.input_dim
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len()
    }

    /// Run the layer over a sequence, returning the cache for BPTT.
    pub fn forward(&self, xs: &[Vec<f64>]) -> LstmCache {
        let h_dim = self.hidden;
        let cols = self.input_dim + h_dim + 1;
        let mut cache = LstmCache {
            xs: xs.to_vec(),
            gates: Vec::with_capacity(xs.len()),
            cs: Vec::with_capacity(xs.len()),
            hs: Vec::with_capacity(xs.len()),
        };
        let mut h_prev = vec![0.0; h_dim];
        let mut c_prev = vec![0.0; h_dim];
        for x in xs {
            debug_assert_eq!(x.len(), self.input_dim, "lstm forward: input size");
            let mut gates = vec![0.0; 4 * h_dim];
            for (r, gate) in gates.iter_mut().enumerate() {
                let row = &self.w[r * cols..(r + 1) * cols];
                let mut z = row[cols - 1]; // bias
                for (i, &xi) in x.iter().enumerate() {
                    z += row[i] * xi;
                }
                for (j, &hj) in h_prev.iter().enumerate() {
                    z += row[self.input_dim + j] * hj;
                }
                *gate = z;
            }
            let mut c = vec![0.0; h_dim];
            let mut h = vec![0.0; h_dim];
            for k in 0..h_dim {
                let i_g = sigmoid(gates[k]);
                let f_g = sigmoid(gates[h_dim + k]);
                let g_g = gates[2 * h_dim + k].tanh();
                let o_g = sigmoid(gates[3 * h_dim + k]);
                gates[k] = i_g;
                gates[h_dim + k] = f_g;
                gates[2 * h_dim + k] = g_g;
                gates[3 * h_dim + k] = o_g;
                c[k] = f_g * c_prev[k] + i_g * g_g;
                h[k] = o_g * c[k].tanh();
            }
            cache.gates.push(gates);
            cache.cs.push(c.clone());
            cache.hs.push(h.clone());
            h_prev = h;
            c_prev = c;
        }
        cache
    }

    /// BPTT: given `dh[t] = ∂L/∂h_t` for every step, accumulate weight
    /// gradients and return `∂L/∂x_t` per step.
    pub fn backward(&mut self, cache: &LstmCache, dh: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let t_len = cache.len();
        assert_eq!(dh.len(), t_len, "lstm backward: dh length");
        let h_dim = self.hidden;
        let cols = self.input_dim + h_dim + 1;

        let mut dxs = vec![vec![0.0; self.input_dim]; t_len];
        let mut dh_next = vec![0.0; h_dim];
        let mut dc_next = vec![0.0; h_dim];

        for t in (0..t_len).rev() {
            let gates = &cache.gates[t];
            let c = &cache.cs[t];
            let c_prev: &[f64] = if t == 0 { &[] } else { &cache.cs[t - 1] };
            let h_prev: &[f64] = if t == 0 { &[] } else { &cache.hs[t - 1] };
            let x = &cache.xs[t];

            let mut dgates = vec![0.0; 4 * h_dim]; // pre-activation grads
            let mut dc_prev = vec![0.0; h_dim];
            for k in 0..h_dim {
                let i_g = gates[k];
                let f_g = gates[h_dim + k];
                let g_g = gates[2 * h_dim + k];
                let o_g = gates[3 * h_dim + k];
                let tanh_c = c[k].tanh();
                let dht = dh[t][k] + dh_next[k];
                let dc = dht * o_g * (1.0 - tanh_c * tanh_c) + dc_next[k];
                let cp = if t == 0 { 0.0 } else { c_prev[k] };
                // Pre-activation gate gradients.
                dgates[k] = dc * g_g * i_g * (1.0 - i_g);
                dgates[h_dim + k] = dc * cp * f_g * (1.0 - f_g);
                dgates[2 * h_dim + k] = dc * i_g * (1.0 - g_g * g_g);
                dgates[3 * h_dim + k] = dht * tanh_c * o_g * (1.0 - o_g);
                dc_prev[k] = dc * f_g;
            }

            // Accumulate weight gradients and propagate to x and h_prev.
            let mut dh_prev = vec![0.0; h_dim];
            #[allow(clippy::needless_range_loop)] // r indexes both dgates and weight rows
            for r in 0..4 * h_dim {
                let dz = dgates[r];
                if dz == 0.0 {
                    continue;
                }
                let wrow = &self.w[r * cols..(r + 1) * cols];
                let grow = &mut self.gw[r * cols..(r + 1) * cols];
                for (i, &xi) in x.iter().enumerate() {
                    grow[i] += dz * xi;
                    dxs[t][i] += dz * wrow[i];
                }
                if t > 0 {
                    for j in 0..h_dim {
                        grow[self.input_dim + j] += dz * h_prev[j];
                        dh_prev[j] += dz * wrow[self.input_dim + j];
                    }
                } else {
                    // h_prev is zero; only dh flows nowhere further.
                    for j in 0..h_dim {
                        dh_prev[j] += dz * wrow[self.input_dim + j];
                    }
                }
                grow[cols - 1] += dz;
            }
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        dxs
    }

    /// Apply an Adam update scaled by `1/batch` and clear gradients.
    pub fn step(&mut self, lr: f64, batch: usize) {
        let scale = 1.0 / batch.max(1) as f64;
        if scale != 1.0 {
            self.gw.iter_mut().for_each(|g| *g *= scale);
        }
        self.adam.step(&mut self.w, &self.gw, lr);
        self.zero_grad();
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SintelRng {
        SintelRng::seed_from_u64(11)
    }

    fn seq(vals: &[f64]) -> Vec<Vec<f64>> {
        vals.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn forward_shapes() {
        let lstm = Lstm::new(2, 5, &mut rng());
        let xs = vec![vec![0.1, 0.2], vec![-0.1, 0.4], vec![0.0, 0.0]];
        let cache = lstm.forward(&xs);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.last_hidden().len(), 5);
        assert!(!cache.is_empty());
        assert!(cache.hidden_states().iter().all(|h| h.iter().all(|v| v.abs() <= 1.0)));
    }

    #[test]
    fn empty_sequence() {
        let lstm = Lstm::new(1, 3, &mut rng());
        let cache = lstm.forward(&[]);
        assert!(cache.is_empty());
    }

    /// The critical test: BPTT gradients match finite differences on both
    /// weights and inputs, for a loss that reads *every* hidden state.
    #[test]
    fn gradient_check_full_bptt() {
        let mut lstm = Lstm::new(2, 3, &mut rng());
        let xs = vec![vec![0.5, -0.3], vec![0.1, 0.8], vec![-0.6, 0.2], vec![0.3, 0.3]];
        // Loss = 0.5 * sum over t, k of h[t][k]^2  ->  dh = h.
        let loss = |lstm: &Lstm| -> f64 {
            let c = lstm.forward(&xs);
            c.hidden_states().iter().flatten().map(|h| 0.5 * h * h).sum()
        };
        let cache = lstm.forward(&xs);
        let dh: Vec<Vec<f64>> = cache.hidden_states().to_vec();
        let dxs = lstm.backward(&cache, &dh);

        let eps = 1e-6;
        // Sample a spread of weight indices (including biases).
        let cols = 2 + 3 + 1;
        let probe: Vec<usize> =
            vec![0, 3, cols - 1, 3 * cols + 2, 6 * cols + 4, 11 * cols + cols - 1];
        for idx in probe {
            let mut plus = lstm.clone();
            plus.w[idx] += eps;
            let mut minus = lstm.clone();
            minus.w[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let analytic = lstm.gw[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                "w[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Input gradients.
        for t in 0..xs.len() {
            for i in 0..2 {
                let mut xp = xs.clone();
                xp[t][i] += eps;
                let mut xm = xs.clone();
                xm[t][i] -= eps;
                let lp: f64 = {
                    let c = lstm.forward(&xp);
                    c.hidden_states().iter().flatten().map(|h| 0.5 * h * h).sum()
                };
                let lm: f64 = {
                    let c = lstm.forward(&xm);
                    c.hidden_states().iter().flatten().map(|h| 0.5 * h * h).sum()
                };
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - dxs[t][i]).abs() < 1e-6 * (1.0 + numeric.abs()),
                    "x[{t}][{i}]: numeric {numeric} vs analytic {}",
                    dxs[t][i]
                );
            }
        }
    }

    #[test]
    fn learns_to_remember_first_input() {
        // Task: output at the last step should equal the *first* input —
        // requires carrying information across the sequence.
        let mut lstm = Lstm::new(1, 8, &mut rng());
        let mut head = crate::dense::Dense::new(8, 1, crate::Activation::Linear, &mut rng());
        let mut data_rng = SintelRng::seed_from_u64(99);
        let seq_len = 6;
        let mut final_loss = f64::INFINITY;
        for _ in 0..300 {
            let mut batch_loss = 0.0;
            let batch = 8;
            for _ in 0..batch {
                let first = data_rng.uniform_range(-1.0, 1.0);
                let mut vals = vec![first];
                for _ in 1..seq_len {
                    vals.push(data_rng.uniform_range(-0.2, 0.2));
                }
                let xs = seq(&vals);
                let cache = lstm.forward(&xs);
                let y = head.forward(cache.last_hidden());
                let err = y[0] - first;
                batch_loss += 0.5 * err * err;
                let dlast = head.backward(cache.last_hidden(), &y, &[err]);
                let mut dh = vec![vec![0.0; 8]; seq_len];
                dh[seq_len - 1] = dlast;
                lstm.backward(&cache, &dh);
            }
            lstm.step(0.01, batch);
            head.step(0.01, batch);
            final_loss = batch_loss / batch as f64;
        }
        assert!(final_loss < 0.01, "loss = {final_loss}");
    }
}

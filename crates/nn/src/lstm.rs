//! LSTM layer with full backpropagation through time.
//!
//! Gate layout follows the classic formulation:
//!
//! ```text
//! z_t = W · [x_t ; h_{t-1} ; 1]          (4H rows: i, f, g, o)
//! i = σ(z_i)   f = σ(z_f)   g = tanh(z_g)   o = σ(z_o)
//! c_t = f ⊙ c_{t-1} + i ⊙ g
//! h_t = o ⊙ tanh(c_t)
//! ```
//!
//! The backward pass is hand-derived and validated against numerical
//! gradients in the test suite — the single most important test in this
//! crate, since every deep pipeline trains through it.

use sintel_common::SintelRng;

use crate::activation::sigmoid;
use crate::adam::Adam;

/// An LSTM layer mapping an input sequence to a hidden-state sequence.
#[derive(Debug, Clone)]
pub struct Lstm {
    input_dim: usize,
    hidden: usize,
    /// Weights, row-major `(4H x (I + H + 1))`; the final column is the bias.
    w: Vec<f64>,
    gw: Vec<f64>,
    adam: Adam,
}

/// Saved activations from a forward pass, needed for BPTT.
#[derive(Debug, Clone)]
pub struct LstmCache {
    /// Inputs per step.
    xs: Vec<Vec<f64>>,
    /// Gate activations per step: `[i, f, g, o]` each of length H.
    gates: Vec<Vec<f64>>,
    /// Cell states per step.
    cs: Vec<Vec<f64>>,
    /// Hidden states per step.
    hs: Vec<Vec<f64>>,
}

/// Reusable per-step buffers for inference-path forward passes.
///
/// Holds the running hidden/cell state plus the fused `4H`
/// pre-activation vector, so a batch of windows can stream through one
/// layer without a single allocation per window (DESIGN.md §4j).
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Gate vector, `[i, f, g, o]` quarters, each of length H.
    gates: Vec<f64>,
    /// Cell state (length H).
    c: Vec<f64>,
    /// Hidden state (length H).
    h: Vec<f64>,
}

impl LstmState {
    fn new(hidden: usize) -> Self {
        Self { gates: vec![0.0; 4 * hidden], c: vec![0.0; hidden], h: vec![0.0; hidden] }
    }

    /// Zero the recurrent state (start of a new sequence). The gate
    /// buffer needs no reset — every step overwrites it fully.
    pub fn reset(&mut self) {
        self.c.iter_mut().for_each(|v| *v = 0.0);
        self.h.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Current hidden state (the last step's output after a forward).
    pub fn hidden(&self) -> &[f64] {
        &self.h
    }
}

impl LstmCache {
    /// Hidden state sequence (one vector per time step).
    pub fn hidden_states(&self) -> &[Vec<f64>] {
        &self.hs
    }

    /// Final hidden state (panics on empty sequences).
    pub fn last_hidden(&self) -> &[f64] {
        self.hs.last().expect("non-empty sequence")
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.hs.len()
    }

    /// True for zero-length sequences.
    pub fn is_empty(&self) -> bool {
        self.hs.is_empty()
    }
}

impl Lstm {
    /// Create with Xavier-uniform weights (forget-gate bias +1 for
    /// healthy gradient flow early in training).
    pub fn new(input_dim: usize, hidden: usize, rng: &mut SintelRng) -> Self {
        assert!(input_dim > 0 && hidden > 0, "lstm dims must be positive");
        let cols = input_dim + hidden + 1;
        let rows = 4 * hidden;
        let bound = (6.0 / (input_dim + 2 * hidden) as f64).sqrt();
        let mut w: Vec<f64> =
            (0..rows * cols).map(|_| rng.uniform_range(-bound, bound)).collect();
        // Forget-gate bias (+1): rows H..2H, last column.
        for r in hidden..2 * hidden {
            w[r * cols + cols - 1] = 1.0;
        }
        Self { input_dim, hidden, gw: vec![0.0; rows * cols], w, adam: Adam::new(rows * cols) }
    }

    /// Hidden size.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Input size.
    pub fn input_size(&self) -> usize {
        self.input_dim
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len()
    }

    /// A fresh zeroed scratch state sized for this layer.
    pub fn state(&self) -> LstmState {
        LstmState::new(self.hidden)
    }

    /// Raw weight buffer, row-major `(4H x (I + H + 1))` — exposed for
    /// the property suite and benchmarks only.
    #[doc(hidden)]
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// One fused LSTM step: `state.{h, c}` hold the previous step's
    /// state on entry and the new state on return.
    ///
    /// This is the *only* step kernel — the cache path
    /// ([`Self::forward`]) and the flat inference path
    /// ([`Self::forward_flat`]) both run it, so they are
    /// bitwise-identical by construction. Reduction order is part of
    /// the determinism contract (DESIGN.md §4j): each pre-activation is
    /// `bias`, then input terms with `i` ascending, then recurrent
    /// terms with `j` ascending; the four gates are then activated and
    /// the cell/hidden update applied in one fused pass over the
    /// contiguous gate quarters (no cross-element accumulation, so the
    /// per-element order is the whole story).
    fn step_fused(&self, x: &[f64], state: &mut LstmState) {
        let h_dim = self.hidden;
        let cols = self.input_dim + h_dim + 1;
        debug_assert_eq!(x.len(), self.input_dim, "lstm forward: input size");
        let LstmState { gates, c, h } = state;
        // Pre-activations: one pass over the full 4H gate vector, each
        // weight row split into contiguous (input, recurrent, bias)
        // views so the inner loops are unit-stride zips.
        for (row, z) in self.w.chunks_exact(cols).zip(gates.iter_mut()) {
            let (xw, rest) = row.split_at(self.input_dim);
            let (hw, bias) = rest.split_at(h_dim);
            let mut acc = bias[0];
            for (&w, &xi) in xw.iter().zip(x) {
                acc += w * xi;
            }
            for (&w, &hj) in hw.iter().zip(h.iter()) {
                acc += w * hj;
            }
            *z = acc;
        }
        // Activations + state update, fused over the gate quarters.
        // In-place is safe: the gate pass above consumed h, and each
        // lane k reads only its own c[k]/h[k].
        let (ig, rest) = gates.split_at_mut(h_dim);
        let (fg, rest) = rest.split_at_mut(h_dim);
        let (gg, og) = rest.split_at_mut(h_dim);
        let lanes = ig
            .iter_mut()
            .zip(fg.iter_mut())
            .zip(gg.iter_mut())
            .zip(og.iter_mut())
            .zip(c.iter_mut().zip(h.iter_mut()));
        for ((((i_z, f_z), g_z), o_z), (ck, hk)) in lanes {
            let i_g = sigmoid(*i_z);
            let f_g = sigmoid(*f_z);
            let g_g = g_z.tanh();
            let o_g = sigmoid(*o_z);
            *i_z = i_g;
            *f_z = f_g;
            *g_z = g_g;
            *o_z = o_g;
            let c_new = f_g * *ck + i_g * g_g;
            *ck = c_new;
            *hk = o_g * c_new.tanh();
        }
    }

    /// Run the layer over a sequence, returning the cache for BPTT.
    pub fn forward(&self, xs: &[Vec<f64>]) -> LstmCache {
        let mut state = self.state();
        let mut cache = LstmCache {
            xs: xs.to_vec(),
            gates: Vec::with_capacity(xs.len()),
            cs: Vec::with_capacity(xs.len()),
            hs: Vec::with_capacity(xs.len()),
        };
        for x in xs {
            self.step_fused(x, &mut state);
            cache.gates.push(state.gates.clone());
            cache.cs.push(state.c.clone());
            cache.hs.push(state.h.clone());
        }
        cache
    }

    /// Inference-only forward over a flat, time-major sequence
    /// (`xs.len()` must be a multiple of the input size).
    ///
    /// Reuses `state`'s buffers across calls — no allocation beyond
    /// the first growth of `hs_out` — and leaves the final
    /// hidden/cell state in `state`. When `hs_out` is given it is
    /// cleared and filled with every step's hidden state
    /// (`t_len * hidden` values), the flat equivalent of
    /// [`LstmCache::hidden_states`]. Bitwise-identical to
    /// [`Self::forward`]: both paths run [`Self::step_fused`].
    pub fn forward_flat(&self, xs: &[f64], state: &mut LstmState, mut hs_out: Option<&mut Vec<f64>>) {
        debug_assert_eq!(xs.len() % self.input_dim, 0, "lstm forward_flat: sequence length");
        state.reset();
        if let Some(out) = hs_out.as_deref_mut() {
            out.clear();
        }
        for x in xs.chunks_exact(self.input_dim) {
            self.step_fused(x, state);
            if let Some(out) = hs_out.as_deref_mut() {
                out.extend_from_slice(&state.h);
            }
        }
    }

    /// BPTT: given `dh[t] = ∂L/∂h_t` for every step, accumulate weight
    /// gradients and return `∂L/∂x_t` per step.
    pub fn backward(&mut self, cache: &LstmCache, dh: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let t_len = cache.len();
        assert_eq!(dh.len(), t_len, "lstm backward: dh length");
        let h_dim = self.hidden;
        let cols = self.input_dim + h_dim + 1;

        let mut dxs = vec![vec![0.0; self.input_dim]; t_len];
        let mut dh_next = vec![0.0; h_dim];
        let mut dc_next = vec![0.0; h_dim];

        for t in (0..t_len).rev() {
            let gates = &cache.gates[t];
            let c = &cache.cs[t];
            let c_prev: &[f64] = if t == 0 { &[] } else { &cache.cs[t - 1] };
            let h_prev: &[f64] = if t == 0 { &[] } else { &cache.hs[t - 1] };
            let x = &cache.xs[t];

            let mut dgates = vec![0.0; 4 * h_dim]; // pre-activation grads
            let mut dc_prev = vec![0.0; h_dim];
            for k in 0..h_dim {
                let i_g = gates[k];
                let f_g = gates[h_dim + k];
                let g_g = gates[2 * h_dim + k];
                let o_g = gates[3 * h_dim + k];
                let tanh_c = c[k].tanh();
                let dht = dh[t][k] + dh_next[k];
                let dc = dht * o_g * (1.0 - tanh_c * tanh_c) + dc_next[k];
                let cp = if t == 0 { 0.0 } else { c_prev[k] };
                // Pre-activation gate gradients.
                dgates[k] = dc * g_g * i_g * (1.0 - i_g);
                dgates[h_dim + k] = dc * cp * f_g * (1.0 - f_g);
                dgates[2 * h_dim + k] = dc * i_g * (1.0 - g_g * g_g);
                dgates[3 * h_dim + k] = dht * tanh_c * o_g * (1.0 - o_g);
                dc_prev[k] = dc * f_g;
            }

            // Accumulate weight gradients and propagate to x and h_prev.
            // Row-wise zips over (dgates, w, gw) keep the same per-row
            // ascending accumulation order as the indexed loop they
            // replace, with unit-stride inner passes.
            let mut dh_prev = vec![0.0; h_dim];
            let dx_t = &mut dxs[t];
            let rows = dgates
                .iter()
                .zip(self.w.chunks_exact(cols))
                .zip(self.gw.chunks_exact_mut(cols));
            for ((&dz, wrow), grow) in rows {
                if dz == 0.0 {
                    continue;
                }
                let (xw, wrest) = wrow.split_at(self.input_dim);
                let (hw, _) = wrest.split_at(h_dim);
                let (gx, grest) = grow.split_at_mut(self.input_dim);
                let (gh, gbias) = grest.split_at_mut(h_dim);
                for ((g, dx), (&w, &xi)) in
                    gx.iter_mut().zip(dx_t.iter_mut()).zip(xw.iter().zip(x))
                {
                    *g += dz * xi;
                    *dx += dz * w;
                }
                if t > 0 {
                    for ((g, dh), (&w, &hj)) in
                        gh.iter_mut().zip(dh_prev.iter_mut()).zip(hw.iter().zip(h_prev))
                    {
                        *g += dz * hj;
                        *dh += dz * w;
                    }
                } else {
                    // h_prev is zero; only dh flows nowhere further.
                    for (dh, &w) in dh_prev.iter_mut().zip(hw) {
                        *dh += dz * w;
                    }
                }
                gbias[0] += dz;
            }
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        dxs
    }

    /// Apply an Adam update scaled by `1/batch` and clear gradients.
    pub fn step(&mut self, lr: f64, batch: usize) {
        let scale = 1.0 / batch.max(1) as f64;
        if scale != 1.0 {
            self.gw.iter_mut().for_each(|g| *g *= scale);
        }
        self.adam.step(&mut self.w, &self.gw, lr);
        self.zero_grad();
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SintelRng {
        SintelRng::seed_from_u64(11)
    }

    fn seq(vals: &[f64]) -> Vec<Vec<f64>> {
        vals.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn forward_shapes() {
        let lstm = Lstm::new(2, 5, &mut rng());
        let xs = vec![vec![0.1, 0.2], vec![-0.1, 0.4], vec![0.0, 0.0]];
        let cache = lstm.forward(&xs);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.last_hidden().len(), 5);
        assert!(!cache.is_empty());
        assert!(cache.hidden_states().iter().all(|h| h.iter().all(|v| v.abs() <= 1.0)));
    }

    #[test]
    fn empty_sequence() {
        let lstm = Lstm::new(1, 3, &mut rng());
        let cache = lstm.forward(&[]);
        assert!(cache.is_empty());
    }

    /// The critical test: BPTT gradients match finite differences on both
    /// weights and inputs, for a loss that reads *every* hidden state.
    #[test]
    fn gradient_check_full_bptt() {
        let mut lstm = Lstm::new(2, 3, &mut rng());
        let xs = vec![vec![0.5, -0.3], vec![0.1, 0.8], vec![-0.6, 0.2], vec![0.3, 0.3]];
        // Loss = 0.5 * sum over t, k of h[t][k]^2  ->  dh = h.
        let loss = |lstm: &Lstm| -> f64 {
            let c = lstm.forward(&xs);
            c.hidden_states().iter().flatten().map(|h| 0.5 * h * h).sum()
        };
        let cache = lstm.forward(&xs);
        let dh: Vec<Vec<f64>> = cache.hidden_states().to_vec();
        let dxs = lstm.backward(&cache, &dh);

        let eps = 1e-6;
        // Sample a spread of weight indices (including biases).
        let cols = 2 + 3 + 1;
        let probe: Vec<usize> =
            vec![0, 3, cols - 1, 3 * cols + 2, 6 * cols + 4, 11 * cols + cols - 1];
        for idx in probe {
            let mut plus = lstm.clone();
            plus.w[idx] += eps;
            let mut minus = lstm.clone();
            minus.w[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let analytic = lstm.gw[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                "w[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Input gradients.
        for t in 0..xs.len() {
            for i in 0..2 {
                let mut xp = xs.clone();
                xp[t][i] += eps;
                let mut xm = xs.clone();
                xm[t][i] -= eps;
                let lp: f64 = {
                    let c = lstm.forward(&xp);
                    c.hidden_states().iter().flatten().map(|h| 0.5 * h * h).sum()
                };
                let lm: f64 = {
                    let c = lstm.forward(&xm);
                    c.hidden_states().iter().flatten().map(|h| 0.5 * h * h).sum()
                };
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - dxs[t][i]).abs() < 1e-6 * (1.0 + numeric.abs()),
                    "x[{t}][{i}]: numeric {numeric} vs analytic {}",
                    dxs[t][i]
                );
            }
        }
    }

    #[test]
    fn learns_to_remember_first_input() {
        // Task: output at the last step should equal the *first* input —
        // requires carrying information across the sequence.
        let mut lstm = Lstm::new(1, 8, &mut rng());
        let mut head = crate::dense::Dense::new(8, 1, crate::Activation::Linear, &mut rng());
        let mut data_rng = SintelRng::seed_from_u64(99);
        let seq_len = 6;
        let mut final_loss = f64::INFINITY;
        for _ in 0..300 {
            let mut batch_loss = 0.0;
            let batch = 8;
            for _ in 0..batch {
                let first = data_rng.uniform_range(-1.0, 1.0);
                let mut vals = vec![first];
                for _ in 1..seq_len {
                    vals.push(data_rng.uniform_range(-0.2, 0.2));
                }
                let xs = seq(&vals);
                let cache = lstm.forward(&xs);
                let y = head.forward(cache.last_hidden());
                let err = y[0] - first;
                batch_loss += 0.5 * err * err;
                let dlast = head.backward(cache.last_hidden(), &y, &[err]);
                let mut dh = vec![vec![0.0; 8]; seq_len];
                dh[seq_len - 1] = dlast;
                lstm.backward(&cache, &dh);
            }
            lstm.step(0.01, batch);
            head.step(0.01, batch);
            final_loss = batch_loss / batch as f64;
        }
        assert!(final_loss < 0.01, "loss = {final_loss}");
    }
}

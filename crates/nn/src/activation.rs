//! Element-wise activation functions and their derivatives.

/// Supported activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Leaky ReLU with slope 0.01 (used by the TadGAN critics).
    LeakyRelu,
}

impl Activation {
    /// Apply to a single value.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => sigmoid(x),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
        }
    }

    /// Derivative expressed in terms of the *output* `y = apply(x)`
    /// (cheap for tanh/sigmoid) except for the piecewise-linear
    /// activations where the output sign suffices.
    #[inline]
    pub fn deriv_from_output(&self, y: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::LeakyRelu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
        }
    }

    /// Apply in place to a buffer.
    pub fn apply_vec(&self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_properties() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    fn apply_known_values() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Linear.apply(-7.0), -7.0);
        assert!((Activation::Tanh.apply(0.5) - 0.5f64.tanh()).abs() < 1e-15);
        assert_eq!(Activation::LeakyRelu.apply(-1.0), -0.01);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Linear,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Relu,
            Activation::LeakyRelu,
        ] {
            // Avoid the ReLU kink at 0.
            for &x in &[-1.3, -0.4, 0.7, 2.1] {
                let y = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.deriv_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn apply_vec_in_place() {
        let mut v = [-1.0, 0.0, 2.0];
        Activation::Relu.apply_vec(&mut v);
        assert_eq!(v, [0.0, 0.0, 2.0]);
    }
}

//! The Adam optimiser (Kingma & Ba, 2015).
//!
//! Each layer owns one [`Adam`] state per parameter buffer; after a batch
//! has accumulated gradients, [`Adam::step`] applies the bias-corrected
//! moment update in place and the caller zeroes the gradient buffer.

/// Adam state for one flat parameter buffer.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    beta1: f64,
    beta2: f64,
    eps: f64,
}

impl Adam {
    /// Create state for a buffer of `n` parameters with the canonical
    /// β₁ = 0.9, β₂ = 0.999.
    pub fn new(n: usize) -> Self {
        Self { m: vec![0.0; n], v: vec![0.0; n], t: 0, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }

    /// Apply one update: `params -= lr * m̂ / (sqrt(v̂) + ε)`.
    ///
    /// `grads` holds the (batch-accumulated) gradient for each parameter;
    /// it is *not* cleared here so callers can inspect it.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64) {
        assert_eq!(params.len(), self.m.len(), "adam: parameter count changed");
        assert_eq!(grads.len(), self.m.len(), "adam: gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic() {
        // f(x) = (x - 3)^2, gradient 2(x - 3).
        let mut x = vec![0.0];
        let mut adam = Adam::new(1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g, 0.05);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // With bias correction the first step magnitude ≈ lr regardless
        // of gradient scale.
        let mut x = vec![0.0];
        let mut adam = Adam::new(1);
        adam.step(&mut x, &[1e6], 0.01);
        assert!((x[0] + 0.01).abs() < 1e-6, "x = {}", x[0]);
    }

    #[test]
    fn zero_gradient_is_noop() {
        let mut x = vec![1.5];
        let mut adam = Adam::new(1);
        adam.step(&mut x, &[0.0], 0.1);
        assert_eq!(x[0], 1.5);
    }

    #[test]
    #[should_panic(expected = "gradient count")]
    fn mismatched_sizes_panic() {
        Adam::new(2).step(&mut [0.0, 0.0], &[1.0], 0.1);
    }
}

//! Fully-connected layer with hand-derived backpropagation.

use sintel_common::SintelRng;

use crate::activation::Activation;
use crate::adam::Adam;

/// A dense layer `y = act(W x + b)`.
///
/// Weights are stored row-major `(out_dim x in_dim)`. Gradients are
/// *accumulated* across [`Dense::backward`] calls (one per sample in a
/// batch) and applied by [`Dense::step`], which also clears them.
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    act: Activation,
    w: Vec<f64>,
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    adam_w: Adam,
    adam_b: Adam,
}

impl Dense {
    /// Create with Xavier/Glorot-uniform initialisation.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, rng: &mut SintelRng) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dense dims must be positive");
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let w = (0..in_dim * out_dim).map(|_| rng.uniform_range(-bound, bound)).collect();
        Self {
            in_dim,
            out_dim,
            act,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            adam_w: Adam::new(in_dim * out_dim),
            adam_b: Adam::new(out_dim),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass for one sample.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.out_dim];
        self.forward_into(x, &mut y);
        y
    }

    /// Allocation-free forward pass into a caller-owned buffer of
    /// length `out_dim` — the hot inference path reuses one buffer per
    /// batch. Runs the exact arithmetic of [`Self::forward`] (it *is*
    /// the kernel `forward` calls), so the two are bitwise-identical.
    pub fn forward_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.in_dim, "dense forward: input size");
        debug_assert_eq!(y.len(), self.out_dim, "dense forward: output size");
        for ((row, &b), y_o) in
            self.w.chunks_exact(self.in_dim).zip(&self.b).zip(y.iter_mut())
        {
            let z = sintel_linalg::dot(row, x) + b;
            *y_o = self.act.apply(z);
        }
    }

    /// Backward pass for one sample: given the input `x` used in the
    /// forward pass, the produced output `y`, and `dy = ∂L/∂y`,
    /// accumulates parameter gradients and returns `∂L/∂x`.
    pub fn backward(&mut self, x: &[f64], y: &[f64], dy: &[f64]) -> Vec<f64> {
        debug_assert_eq!(dy.len(), self.out_dim);
        let mut dx = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            let dz = dy[o] * self.act.deriv_from_output(y[o]);
            if dz == 0.0 {
                continue;
            }
            self.gb[o] += dz;
            let wrow = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.gw[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += dz * x[i];
                dx[i] += dz * wrow[i];
            }
        }
        dx
    }

    /// Apply an Adam update scaled by `1/batch` and clear gradients.
    pub fn step(&mut self, lr: f64, batch: usize) {
        let scale = 1.0 / batch.max(1) as f64;
        if scale != 1.0 {
            self.gw.iter_mut().for_each(|g| *g *= scale);
            self.gb.iter_mut().for_each(|g| *g *= scale);
        }
        self.adam_w.step(&mut self.w, &self.gw, lr);
        self.adam_b.step(&mut self.b, &self.gb, lr);
        self.zero_grad();
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Clamp every weight and bias into `[-c, c]` (WGAN weight clipping).
    pub fn clip_weights(&mut self, c: f64) {
        for w in self.w.iter_mut().chain(self.b.iter_mut()) {
            *w = w.clamp(-c, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SintelRng {
        SintelRng::seed_from_u64(7)
    }

    #[test]
    fn forward_shape_and_determinism() {
        let layer = Dense::new(3, 2, Activation::Tanh, &mut rng());
        let y1 = layer.forward(&[0.1, -0.2, 0.3]);
        let y2 = layer.forward(&[0.1, -0.2, 0.3]);
        assert_eq!(y1.len(), 2);
        assert_eq!(y1, y2);
        assert!(y1.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut layer = Dense::new(4, 3, Activation::Tanh, &mut rng());
        let x = [0.3, -0.7, 0.2, 0.9];
        let target = [0.1, -0.4, 0.6];
        // Loss: 0.5 * ||y - t||^2  ->  dy = y - t.
        let loss = |layer: &Dense| {
            let y = layer.forward(&x);
            y.iter().zip(&target).map(|(a, b)| 0.5 * (a - b) * (a - b)).sum::<f64>()
        };
        let y = layer.forward(&x);
        let dy: Vec<f64> = y.iter().zip(&target).map(|(a, b)| a - b).collect();
        let dx = layer.backward(&x, &y, &dy);

        // Check weight gradients numerically.
        let eps = 1e-6;
        for idx in [0usize, 5, 11] {
            let mut plus = layer.clone();
            plus.w[idx] += eps;
            let mut minus = layer.clone();
            minus.w[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (numeric - layer.gw[idx]).abs() < 1e-6,
                "w[{idx}]: numeric {numeric} vs analytic {}",
                layer.gw[idx]
            );
        }
        // Check input gradient numerically.
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let yp = layer.forward(&xp);
            let ym = layer.forward(&xm);
            let lp: f64 =
                yp.iter().zip(&target).map(|(a, b)| 0.5 * (a - b) * (a - b)).sum();
            let lm: f64 =
                ym.iter().zip(&target).map(|(a, b)| 0.5 * (a - b) * (a - b)).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - dx[i]).abs() < 1e-6, "x[{i}]");
        }
    }

    #[test]
    fn learns_linear_map() {
        // y = 2x0 - x1 learned by a linear layer.
        let mut layer = Dense::new(2, 1, Activation::Linear, &mut rng());
        let mut rng = rng();
        for _ in 0..400 {
            let mut batch_n = 0;
            for _ in 0..8 {
                let x = [rng.uniform_range(-1.0, 1.0), rng.uniform_range(-1.0, 1.0)];
                let t = 2.0 * x[0] - x[1];
                let y = layer.forward(&x);
                layer.backward(&x, &y, &[y[0] - t]);
                batch_n += 1;
            }
            layer.step(0.02, batch_n);
        }
        let y = layer.forward(&[0.5, 0.25]);
        assert!((y[0] - 0.75).abs() < 0.02, "y = {}", y[0]);
    }

    #[test]
    fn clip_weights_bounds_everything() {
        let mut layer = Dense::new(4, 4, Activation::Linear, &mut rng());
        layer.w[0] = 5.0;
        layer.b[1] = -3.0;
        layer.clip_weights(0.1);
        assert!(layer.w.iter().chain(layer.b.iter()).all(|w| w.abs() <= 0.1));
    }

    #[test]
    fn param_count() {
        let layer = Dense::new(3, 2, Activation::Linear, &mut rng());
        assert_eq!(layer.param_count(), 8);
    }
}

//! Property-based suite for the fused LSTM kernel, built on
//! `sintel_common::check`.
//!
//! The fused forward (`Lstm::forward` / `Lstm::forward_flat`) must be
//! bitwise-identical to the pre-fusion scalar reference: four strided
//! gate loops with per-row summation order bias → input terms →
//! recurrent terms (DESIGN.md §4j). The reference is replicated here
//! from the public weight layout, so any change to the fused kernel's
//! reduction order is caught as a bit mismatch — and a seeded mutation
//! test proves the harness actually has that sensitivity.

use sintel_common::check::{forall, shrinks, Config};
use sintel_common::SintelRng;
use sintel_nn::activation::sigmoid;
use sintel_nn::Lstm;

/// A random LSTM plus a random input sequence (possibly empty).
fn random_case(rng: &mut SintelRng) -> (Lstm, Vec<Vec<f64>>) {
    let input_dim = 1 + rng.index(3);
    let hidden = 1 + rng.index(9);
    let t_len = rng.index(7);
    let lstm = Lstm::new(input_dim, hidden, rng);
    let xs = (0..t_len)
        .map(|_| (0..input_dim).map(|_| rng.uniform_range(-2.0, 2.0)).collect())
        .collect();
    (lstm, xs)
}

/// The pre-fusion scalar forward pass: indexed gate rows, strided
/// activation loops, per-step buffer allocation. This is the
/// *specification* of the LSTM step's reduction order.
fn reference_hidden_states(lstm: &Lstm, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let h_dim = lstm.hidden_size();
    let input_dim = lstm.input_size();
    let cols = input_dim + h_dim + 1;
    let w = lstm.weights();
    let mut h_prev = vec![0.0; h_dim];
    let mut c_prev = vec![0.0; h_dim];
    let mut hs = Vec::with_capacity(xs.len());
    for x in xs {
        let mut gates = vec![0.0; 4 * h_dim];
        for (r, gate) in gates.iter_mut().enumerate() {
            let row = &w[r * cols..(r + 1) * cols];
            let mut z = row[cols - 1]; // bias
            for (i, &xi) in x.iter().enumerate() {
                z += row[i] * xi;
            }
            for (j, &hj) in h_prev.iter().enumerate() {
                z += row[input_dim + j] * hj;
            }
            *gate = z;
        }
        let mut c = vec![0.0; h_dim];
        let mut h = vec![0.0; h_dim];
        for k in 0..h_dim {
            let i_g = sigmoid(gates[k]);
            let f_g = sigmoid(gates[h_dim + k]);
            let g_g = gates[2 * h_dim + k].tanh();
            let o_g = sigmoid(gates[3 * h_dim + k]);
            c[k] = f_g * c_prev[k] + i_g * g_g;
            h[k] = o_g * c[k].tanh();
        }
        hs.push(h.clone());
        h_prev = h;
        c_prev = c;
    }
    hs
}

/// MUTANT reference: recurrent terms accumulated *before* the input
/// terms — the same sum over the reals, a different floating-point
/// reduction order.
fn mutant_reordered_hidden_states(lstm: &Lstm, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let h_dim = lstm.hidden_size();
    let input_dim = lstm.input_size();
    let cols = input_dim + h_dim + 1;
    let w = lstm.weights();
    let mut h_prev = vec![0.0; h_dim];
    let mut c_prev = vec![0.0; h_dim];
    let mut hs = Vec::with_capacity(xs.len());
    for x in xs {
        let mut gates = vec![0.0; 4 * h_dim];
        for (r, gate) in gates.iter_mut().enumerate() {
            let row = &w[r * cols..(r + 1) * cols];
            let mut z = row[cols - 1];
            // BUG: h terms summed before x terms.
            for (j, &hj) in h_prev.iter().enumerate() {
                z += row[input_dim + j] * hj;
            }
            for (i, &xi) in x.iter().enumerate() {
                z += row[i] * xi;
            }
            *gate = z;
        }
        let mut c = vec![0.0; h_dim];
        let mut h = vec![0.0; h_dim];
        for k in 0..h_dim {
            let i_g = sigmoid(gates[k]);
            let f_g = sigmoid(gates[h_dim + k]);
            let g_g = gates[2 * h_dim + k].tanh();
            let o_g = sigmoid(gates[3 * h_dim + k]);
            c[k] = f_g * c_prev[k] + i_g * g_g;
            h[k] = o_g * c[k].tanh();
        }
        hs.push(h.clone());
        h_prev = h;
        c_prev = c;
    }
    hs
}

fn bitwise_eq(
    name: &str,
    want: &[Vec<f64>],
    got: &[Vec<f64>],
) -> Result<(), String> {
    if want.len() != got.len() {
        return Err(format!("{name}: {} steps vs {}", want.len(), got.len()));
    }
    for (t, (w, g)) in want.iter().zip(got).enumerate() {
        for (k, (a, b)) in w.iter().zip(g).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Err(format!("{name}: h[{t}][{k}] differs: {a:?} vs {b:?}"));
            }
        }
    }
    Ok(())
}

/// The fused cache-path forward is bitwise-identical to the strided
/// scalar reference at every random shape and sequence length.
#[test]
fn fused_forward_matches_scalar_reference_bitwise() {
    forall(
        "Lstm::forward == pre-fusion scalar reference, bitwise",
        &Config::default(),
        random_case,
        shrinks::none,
        |(lstm, xs)| {
            let reference = reference_hidden_states(lstm, xs);
            let cache = lstm.forward(xs);
            bitwise_eq("fused forward", &reference, cache.hidden_states())
        },
    );
}

/// The flat inference path (reused scratch buffers, no per-step
/// allocation) is bitwise-identical to the cache path.
#[test]
fn forward_flat_matches_cache_forward_bitwise() {
    forall(
        "Lstm::forward_flat == Lstm::forward, bitwise",
        &Config::default(),
        random_case,
        shrinks::none,
        |(lstm, xs)| {
            let cache = lstm.forward(xs);
            let flat_xs: Vec<f64> = xs.iter().flatten().copied().collect();
            let mut state = lstm.state();
            let mut hs = Vec::new();
            // Run twice through the same scratch: the second pass must
            // be unaffected by leftover state (reset contract).
            for _ in 0..2 {
                lstm.forward_flat(&flat_xs, &mut state, Some(&mut hs));
            }
            let h_dim = lstm.hidden_size();
            let got: Vec<Vec<f64>> = hs.chunks(h_dim).map(<[f64]>::to_vec).collect();
            bitwise_eq("forward_flat", cache.hidden_states(), &got)?;
            if let Some(last) = cache.hidden_states().last() {
                bitwise_eq("final state", &[last.clone()], &[state.hidden().to_vec()])?;
            }
            Ok(())
        },
    );
}

/// Extract `prefix <u64>` from a forall report.
fn parse_seed(report: &str, prefix: &str) -> u64 {
    let at = report.find(prefix).unwrap_or_else(|| panic!("report lacks `{prefix}`: {report}"));
    report[at + prefix.len()..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("unparseable seed after `{prefix}`: {report}"))
}

/// Sensitivity proof: a reordered-reduction mutation of the LSTM step
/// is caught by the bitwise property, and the reported case seed
/// replays the exact failing input.
#[test]
fn seeded_lstm_mutation_is_caught_and_replayable() {
    // Guarantee a non-trivial recurrent step so the reordered sum has
    // room to differ (t_len >= 2, input_dim >= 2).
    let gen = |rng: &mut SintelRng| {
        let input_dim = 2 + rng.index(2);
        let hidden = 2 + rng.index(8);
        let lstm = Lstm::new(input_dim, hidden, rng);
        let xs: Vec<Vec<f64>> = (0..2 + rng.index(5))
            .map(|_| (0..input_dim).map(|_| rng.uniform_range(-2.0, 2.0)).collect())
            .collect();
        (lstm, xs)
    };
    let prop = |(lstm, xs): &(Lstm, Vec<Vec<f64>>)| {
        let cache = lstm.forward(xs);
        bitwise_eq(
            "MUTANT reordered gate reduction",
            cache.hidden_states(),
            &mutant_reordered_hidden_states(lstm, xs),
        )
    };
    let result = std::panic::catch_unwind(|| {
        forall("MUTANT reordered gate reduction", &Config::default(), gen, shrinks::none, prop)
    });
    let payload = result.expect_err("the mutated step must be caught by the property");
    let report = if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("forall panicked with an opaque payload");
    };
    assert!(
        report.contains(sintel_common::check::CHECK_SEED_ENV),
        "report must tell the user how to replay the run: {report}"
    );
    assert_eq!(parse_seed(&report, "root seed "), Config::default().seed);
    let case = parse_seed(&report, "case seed ");
    let (_, replayed) = sintel_common::check::replay(case, gen, prop);
    assert!(replayed.is_err(), "replaying case seed {case} must fail again");
}

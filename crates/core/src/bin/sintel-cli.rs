//! `sintel-cli` — the end-user command line (Table 1's "End User" row).
//!
//! ```text
//! sintel-cli pipelines                          list the pipeline hub
//! sintel-cli primitives                         list registered primitives
//! sintel-cli datasets [--scale S]               dataset summary (Table 2)
//! sintel-cli detect --signal F.csv --pipeline P [--train G.csv] [--labels L.csv]
//! sintel-cli view --signal F.csv [--width N] [--height N]
//! sintel-cli benchmark [--scale S] [--pipelines a,b] [--datasets NAB,YAHOO]
//!                      [--timeout SECS] [--retries N] [--threads N]
//!                      [--store DIR] [--store-durability snapshot|wal|wal-sync]
//! sintel-cli analyze [--all | PIPELINE...]      static template diagnostics
//! ```
//!
//! Signals are `timestamp,value` CSV files (`sintel_timeseries::csvio`
//! format); label files are `start,end` rows.
//!
//! Every command also takes the observability flags `--log-level LEVEL`,
//! `--trace-out FILE` (JSON-lines span trace) and `--metrics-out FILE`
//! (Prometheus text metrics snapshot).

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use sintel::benchmark::{
    benchmark_report_with_db, persist_benchmark, render_perf_table, render_table,
    BenchmarkConfig, MetricKind,
};
use sintel::Sintel;
use sintel_pipeline::hub::template_by_name;
use sintel_pipeline::policy::RunPolicy;
use sintel_serve::{
    Admission, AnomalyEvent, IngestEvent, ServeConfig, ServeEngine, StatusServer, TenantSpec,
};
use sintel_store::{Durability, SintelDb, StoreOptions};
use sintel_datasets::{load_all, DatasetConfig, DatasetId};
use sintel_timeseries::csvio;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `analyze` takes positional pipeline names and the valueless
    // `--all` / `--deployment` switches, and `serve` the valueless
    // `--dry-run`, which the strict `--key value` parser would reject;
    // peel them off before flag parsing.
    let (targets, rest) = if command == "analyze" {
        split_analyze_args(rest)
    } else if command == "serve" {
        split_serve_args(rest)
    } else {
        (Vec::new(), rest.to_vec())
    };
    let opts = match parse_flags(&rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let obs = match setup_observability(&opts) {
        Ok(obs) => obs,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = apply_threads_flag(&opts) {
        eprintln!("error: {e}\n\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let result = match command.as_str() {
        "pipelines" => cmd_pipelines(),
        "primitives" => cmd_primitives(),
        "datasets" => cmd_datasets(&opts),
        "detect" => cmd_detect(&opts),
        "view" => cmd_view(&opts),
        "benchmark" => cmd_benchmark(&opts),
        "serve" => cmd_serve(&opts, targets.iter().any(|t| t == "--dry-run")),
        "forecast" => cmd_forecast(&opts),
        "analyze" => cmd_analyze(&targets),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    // Export trace/metrics even when the command failed — a post-mortem
    // is exactly when the trace matters.
    let export = finish_observability(&obs);
    match result.and(export) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Leveled, so `--log-level off` silences it; the exit code
            // still reports the failure.
            sintel_obs::error!("sintel::cli", e);
            ExitCode::FAILURE
        }
    }
}

/// Trace/metrics export destinations requested on the command line.
/// Holds the trace-flush guard so a panic mid-command still flushes
/// the buffered span tail to `--trace-out` during unwinding.
#[derive(Debug)]
struct ObsFlags {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    _trace_guard: Option<sintel_obs::TraceFlushGuard>,
}

/// Apply `--log-level` and arm `--trace-out` capture before the command
/// runs. Tracing writes through a registered sink: the returned guard
/// flushes whatever is buffered even if the command panics.
fn setup_observability(opts: &HashMap<String, String>) -> Result<ObsFlags, String> {
    if let Some(level) = opts.get("log-level") {
        let parsed = sintel_obs::Level::parse(level)
            .ok_or_else(|| format!("bad --log-level '{level}' (error|warn|info|debug|trace|off)"))?;
        sintel_obs::set_level(parsed);
    }
    let trace_out = opts.get("trace-out").cloned();
    let mut trace_guard = None;
    if let Some(path) = &trace_out {
        // Truncate up front so sink appends rebuild the file from
        // scratch for this run.
        std::fs::write(path, "").map_err(|e| format!("creating --trace-out {path}: {e}"))?;
        sintel_obs::set_trace_sink(Some(path.into()));
        sintel_obs::tracing_start();
        trace_guard = Some(sintel_obs::TraceFlushGuard::new());
    }
    Ok(ObsFlags {
        trace_out,
        metrics_out: opts.get("metrics-out").cloned(),
        _trace_guard: trace_guard,
    })
}

/// Write the captured trace (JSON lines) and the metrics snapshot
/// (Prometheus text) to their requested destinations.
fn finish_observability(flags: &ObsFlags) -> Result<(), String> {
    if let Some(path) = &flags.trace_out {
        sintel_obs::flush_trace().map_err(|e| format!("writing --trace-out {path}: {e}"))?;
        sintel_obs::set_trace_sink(None);
        let _ = sintel_obs::tracing_stop();
        // Count the sink, not the last flush: guards (engine shutdown,
        // panic-unwind) may already have drained the buffer into it.
        let total = std::fs::read_to_string(path).map(|t| t.lines().count()).unwrap_or(0);
        eprintln!("trace: {total} span events -> {path}");
    }
    if let Some(path) = &flags.metrics_out {
        let snapshot = sintel_obs::global().snapshot();
        std::fs::write(path, snapshot.to_prometheus())
            .map_err(|e| format!("writing --metrics-out {path}: {e}"))?;
        eprintln!("metrics: {} series -> {path}", snapshot.metrics.len());
    }
    Ok(())
}

const USAGE: &str = "sintel-cli — end-to-end time series anomaly detection

USAGE:
  sintel-cli pipelines
  sintel-cli primitives
  sintel-cli datasets  [--scale S]
  sintel-cli detect    --signal FILE.csv --pipeline NAME
                       [--train FILE.csv] [--labels FILE.csv]
  sintel-cli view      --signal FILE.csv [--width N] [--height N]
  sintel-cli benchmark [--scale S] [--pipelines a,b,c] [--datasets NAB,NASA,YAHOO]
                       [--timeout SECS] [--retries N] [--threads N]
                       [--store DIR] [--store-durability snapshot|wal|wal-sync]
                       --store persists runs/failures/quarantine to a
                       crash-safe knowledge base (WAL + snapshots); the
                       durability knob trades fsync cost for crash loss:
                       wal-sync (default) fsyncs every commit, wal leaves
                       fsync to the OS, snapshot only persists on save
  sintel-cli serve     --corpus FILE.csv [--pipeline NAME] [--tenants a:9,b:1]
                       [--tick-every N] [--window N] [--hop N] [--min-points N]
                       [--queue-capacity N] [--high-water N] [--priority-floor P]
                       [--degrade-depth N] [--timeout SECS]
                       [--store DIR] [--store-durability snapshot|wal|wal-sync]
                       [--status-addr HOST:PORT] [--tick-log FILE]
                       replay a multi-tenant event corpus (tenant,signal,
                       timestamp,value rows) through the streaming engine.
                       Bounded queues push back (Retry => the replayer runs a
                       tick and re-offers); past --high-water, tenants with
                       priority below --priority-floor are shed. With --store,
                       sessions checkpoint group-committed per tick: rerunning
                       after a kill -9 resumes where the last tick committed,
                       losing at most one uncommitted interval and never
                       duplicating a committed anomaly event.
                       --status-addr serves live /metrics /healthz /tenants
                       /trace over HTTP (read-only; off by default);
                       --tick-log appends one wide-event JSON line per tick;
                       --dry-run prints the whole-deployment static analysis
                       (SA008-SA014) and exits without replaying anything
  sintel-cli forecast  --signal FILE.csv [--model arima|holt_winters|seasonal_naive]
                       [--horizon N]
  sintel-cli analyze   [--all | PIPELINE...] [--deployment]
                       static dataflow/contract/shape/cost diagnostics
                       (SA000-SA009); exits nonzero on error diagnostics.
                       --deployment additionally analyzes the named
                       pipelines as a tenant roster under the default
                       serve configuration (SA008-SA014)

OBSERVABILITY (any command):
  --log-level LEVEL    stderr log verbosity: error|warn|info|debug|trace|off
                       (overrides the SINTEL_LOG environment variable)
  --trace-out FILE     export the run's span trace as JSON lines
  --metrics-out FILE   export the run's metrics snapshot as Prometheus text

PARALLELISM (any command):
  --threads N          worker-thread budget (overrides SINTEL_THREADS;
                       default = available parallelism). Results are
                       bitwise-identical at every setting";

/// Parse `--key value` flags into a map.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{flag}'"));
        };
        let value =
            iter.next().ok_or_else(|| format!("flag --{key} needs a value"))?;
        opts.insert(key.to_string(), value.clone());
    }
    Ok(opts)
}

/// Split `analyze`'s positional arguments (pipeline names and the bare
/// `--all` / `--deployment` switches) from the `--key value` flags
/// shared by every command.
fn split_analyze_args(args: &[String]) -> (Vec<String>, Vec<String>) {
    let mut targets = Vec::new();
    let mut flags = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--all" || arg == "--deployment" {
            targets.push(arg.clone());
        } else if arg.starts_with("--") {
            flags.push(arg.clone());
            if let Some(value) = iter.next() {
                flags.push(value.clone());
            }
        } else {
            targets.push(arg.clone());
        }
    }
    (targets, flags)
}

/// Peel `serve`'s bare `--dry-run` switch off the `--key value` flags.
fn split_serve_args(args: &[String]) -> (Vec<String>, Vec<String>) {
    let (switches, flags): (Vec<String>, Vec<String>) =
        args.iter().cloned().partition(|a| a == "--dry-run");
    (switches, flags)
}

fn cmd_analyze(targets: &[String]) -> Result<(), String> {
    let all = targets.iter().any(|t| t == "--all");
    let deployment = targets.iter().any(|t| t == "--deployment");
    let names: Vec<String> = if all {
        sintel_pipeline::hub::available_pipelines()
            .iter()
            .chain(sintel_pipeline::hub::EXTENSION_PIPELINES.iter())
            .map(|s| s.to_string())
            .collect()
    } else {
        let named: Vec<String> =
            targets.iter().filter(|t| !t.starts_with("--")).cloned().collect();
        if named.is_empty() {
            return Err("analyze needs a pipeline name or --all".to_string());
        }
        named
    };
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for name in &names {
        let template =
            sintel_pipeline::hub::template_by_name(name).map_err(|e| e.to_string())?;
        let report = template.analyze();
        print!("{}", report.render());
        errors += report.errors().count();
        warnings += report.warnings().count();
    }
    // --deployment: analyze the named pipelines as a tenant roster under
    // the default serve configuration — the whole-deployment checks
    // (SA008 degradation invariant, SA010-SA014) on top of the
    // per-template reports above.
    if deployment {
        let cfg = ServeConfig::default();
        let specs = names
            .iter()
            .map(|name| {
                template_by_name(name)
                    .map(|t| TenantSpec::new(name, 0, t))
                    .map_err(|e| e.to_string())
            })
            .collect::<Result<Vec<_>, String>>()?;
        let report = sintel_serve::analyze_deployment(&cfg, &specs);
        print!("{}", report.render());
        errors += report.errors().count();
        warnings += report.warnings().count();
    }
    if names.len() > 1 {
        println!(
            "\nanalyzed {} pipelines: {errors} error(s), {warnings} warning(s)",
            names.len()
        );
    }
    if errors > 0 {
        Err(format!("{errors} error diagnostic(s)"))
    } else {
        Ok(())
    }
}

fn cmd_pipelines() -> Result<(), String> {
    println!("pipeline hub (paper Table 3):");
    for name in sintel_pipeline::hub::available_pipelines() {
        println!("  {name}");
    }
    println!("extensions:");
    for name in sintel_pipeline::hub::EXTENSION_PIPELINES {
        println!("  {name}");
    }
    Ok(())
}

fn cmd_primitives() -> Result<(), String> {
    println!("{:<26} {:<15} description", "primitive", "engine");
    for name in sintel_primitives::available_primitives() {
        let prim = sintel_primitives::build_primitive(name).map_err(|e| e.to_string())?;
        let meta = prim.meta();
        println!("{:<26} {:<15} {}", meta.name, meta.engine.to_string(), meta.description);
    }
    Ok(())
}

fn cmd_datasets(opts: &HashMap<String, String>) -> Result<(), String> {
    let scale: f64 = opts.get("scale").map_or(Ok(1.0), |s| {
        s.parse().map_err(|_| format!("bad --scale '{s}'"))
    })?;
    let cfg = DatasetConfig { seed: 42, signal_scale: scale, length_scale: scale };
    println!("{:<10} {:>10} {:>13} {:>20}", "dataset", "signals", "anomalies", "avg length");
    for ds in load_all(&cfg) {
        println!(
            "{:<10} {:>10} {:>13} {:>20}",
            ds.name,
            ds.num_signals(),
            ds.num_anomalies(),
            ds.avg_signal_length()
        );
    }
    Ok(())
}

fn cmd_detect(opts: &HashMap<String, String>) -> Result<(), String> {
    let signal_path = opts.get("signal").ok_or("--signal is required")?;
    let pipeline = opts.get("pipeline").ok_or("--pipeline is required")?;
    let signal = csvio::read_signal_csv("signal", Path::new(signal_path))
        .map_err(|e| e.to_string())?;
    let train = match opts.get("train") {
        Some(path) => {
            csvio::read_signal_csv("train", Path::new(path)).map_err(|e| e.to_string())?
        }
        None => signal.clone(),
    };

    let mut sintel = Sintel::new(pipeline).map_err(|e| e.to_string())?;
    sintel.fit(&train).map_err(|e| e.to_string())?;
    let anomalies = sintel.detect(&signal).map_err(|e| e.to_string())?;
    println!("detected {} anomalies:", anomalies.len());
    println!("{:>12} {:>12} {:>9}", "start", "end", "severity");
    for a in &anomalies {
        println!("{:>12} {:>12} {:>9.3}", a.interval.start, a.interval.end, a.score);
    }

    if let Some(labels_path) = opts.get("labels") {
        let truth =
            csvio::read_labels_csv(Path::new(labels_path)).map_err(|e| e.to_string())?;
        let pred: Vec<_> = anomalies.iter().map(|a| a.interval).collect();
        let scores = sintel_metrics::overlapping_segment(&truth, &pred).scores();
        println!(
            "\nvs {} labelled anomalies: F1 {:.3} precision {:.3} recall {:.3}",
            truth.len(),
            scores.f1,
            scores.precision,
            scores.recall
        );
    }
    Ok(())
}

fn cmd_view(opts: &HashMap<String, String>) -> Result<(), String> {
    let signal_path = opts.get("signal").ok_or("--signal is required")?;
    let parse_dim = |key: &str, default: usize| -> Result<usize, String> {
        opts.get(key).map_or(Ok(default), |s| {
            s.parse().map_err(|_| format!("bad --{key} '{s}'"))
        })
    };
    let width = parse_dim("width", 100)?;
    let height = parse_dim("height", 14)?;
    let signal = csvio::read_signal_csv("signal", Path::new(signal_path))
        .map_err(|e| e.to_string())?;
    print!("{}", sintel_hil::viz::render(&signal, &[], width, height));
    Ok(())
}

fn cmd_forecast(opts: &HashMap<String, String>) -> Result<(), String> {
    use sintel::forecast::{ForecastModel, Forecaster};
    let signal_path = opts.get("signal").ok_or("--signal is required")?;
    let model = match opts.get("model") {
        Some(name) => {
            ForecastModel::parse(name).ok_or_else(|| format!("unknown model '{name}'"))?
        }
        None => ForecastModel::Arima,
    };
    let horizon: usize = opts.get("horizon").map_or(Ok(24), |s| {
        s.parse().map_err(|_| format!("bad --horizon '{s}'"))
    })?;
    let signal = csvio::read_signal_csv("signal", Path::new(signal_path))
        .map_err(|e| e.to_string())?;
    let mut forecaster = Forecaster::new(model);
    forecaster.fit(&signal).map_err(|e| e.to_string())?;
    let fc = forecaster.forecast(horizon).map_err(|e| e.to_string())?;
    println!("{:>12} {:>14}", "timestamp", "forecast");
    for (t, v) in fc.timestamps().iter().zip(fc.values()) {
        println!("{t:>12} {v:>14.4}");
    }
    // Honest accuracy estimate from a backtest on the recent history.
    let holdout = (horizon).min(signal.len() / 4).max(8);
    if let Ok((mae, smape)) = sintel::forecast::Forecaster::backtest(model, &signal, holdout) {
        println!("
backtest on the last {holdout} samples: MAE {mae:.4}, SMAPE {smape:.4}");
    }
    Ok(())
}

fn cmd_benchmark(opts: &HashMap<String, String>) -> Result<(), String> {
    let scale: f64 = opts.get("scale").map_or(Ok(0.03), |s| {
        s.parse().map_err(|_| format!("bad --scale '{s}'"))
    })?;
    let mut policy = sintel::RunPolicy::default();
    if let Some(s) = opts.get("timeout") {
        let secs: u64 = s.parse().map_err(|_| format!("bad --timeout '{s}'"))?;
        policy.timeout = std::time::Duration::from_secs(secs);
    }
    if let Some(s) = opts.get("retries") {
        policy.max_retries = s.parse().map_err(|_| format!("bad --retries '{s}'"))?;
    }
    let pipelines: Vec<String> = match opts.get("pipelines") {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        None => sintel_pipeline::hub::available_pipelines()
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let datasets: Vec<DatasetId> = match opts.get("datasets") {
        Some(list) => list
            .split(',')
            .map(|s| {
                DatasetId::parse(s.trim()).ok_or_else(|| format!("unknown dataset '{s}'"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![DatasetId::Nab, DatasetId::Nasa, DatasetId::Yahoo],
    };
    let cfg = BenchmarkConfig {
        pipelines,
        datasets,
        data: DatasetConfig {
            seed: 42,
            signal_scale: scale,
            length_scale: (scale * 2.5).clamp(0.1, 1.0),
        },
        metric: MetricKind::Overlap,
        rank: "f1",
        policy,
        ..BenchmarkConfig::default()
    };
    let db = open_store(opts)?;
    let report = benchmark_report_with_db(&cfg, db.as_ref()).map_err(|e| e.to_string())?;
    print!("{}", render_table(&report.rows));
    println!();
    print!("{}", render_perf_table(&report));
    if let Some(db) = &db {
        persist_benchmark(db, &report.rows);
        db.save().map_err(|e| format!("saving knowledge base: {e}"))?;
        let raw = db.raw();
        eprintln!(
            "store: {} collections persisted at durability '{}' ({} run failures, \
             {} quarantined pairs)",
            raw.collection_names().len(),
            raw.durability().label(),
            raw.count(sintel_store::schema::collections::RUN_FAILURES, &sintel_store::Filter::All),
            raw.count(sintel_store::schema::collections::QUARANTINE, &sintel_store::Filter::All),
        );
    }
    Ok(())
}

/// Open the persistent knowledge base named by `--store DIR`, at the
/// durability level named by `--store-durability` (default `wal-sync`).
/// Returns `None` when no store was requested.
/// Load a serve corpus: `tenant,signal,timestamp,value` CSV rows (a
/// header row and `#` comments are skipped).
fn load_corpus(path: &Path) -> Result<Vec<IngestEvent>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut events = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(format!(
                "{}:{}: want tenant,signal,timestamp,value",
                path.display(),
                lineno + 1
            ));
        }
        let Ok(timestamp) = fields[2].parse::<i64>() else {
            if lineno == 0 {
                continue; // header row
            }
            return Err(format!(
                "{}:{}: bad timestamp '{}'",
                path.display(),
                lineno + 1,
                fields[2]
            ));
        };
        let value: f64 = fields[3].parse().map_err(|_| {
            format!("{}:{}: bad value '{}'", path.display(), lineno + 1, fields[3])
        })?;
        events.push(IngestEvent::new(fields[0], fields[1], timestamp, value));
    }
    Ok(events)
}

fn cmd_serve(opts: &HashMap<String, String>, dry_run: bool) -> Result<(), String> {
    let corpus = opts
        .get("corpus")
        .ok_or("serve needs --corpus FILE.csv (tenant,signal,timestamp,value rows)")?;
    let events = load_corpus(Path::new(corpus))?;
    if events.is_empty() {
        return Err(format!("{corpus}: no events"));
    }

    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        match opts.get(key) {
            Some(s) => s
                .parse()
                .ok()
                .filter(|n: &usize| *n >= 1)
                .ok_or_else(|| format!("bad --{key} '{s}' (want an integer >= 1)")),
            None => Ok(default),
        }
    };
    let mut cfg = ServeConfig::default();
    cfg.window = parse_usize("window", cfg.window)?;
    cfg.hop = parse_usize("hop", cfg.hop as usize)? as u64;
    cfg.min_points = parse_usize("min-points", cfg.min_points)?;
    cfg.queue_capacity = parse_usize("queue-capacity", cfg.queue_capacity)?;
    cfg.high_water = parse_usize("high-water", cfg.high_water)?;
    cfg.degrade_depth = parse_usize("degrade-depth", cfg.degrade_depth)?;
    if let Some(s) = opts.get("priority-floor") {
        cfg.priority_floor =
            s.parse().map_err(|_| format!("bad --priority-floor '{s}' (want 0-255)"))?;
    }
    if let Some(s) = opts.get("timeout") {
        let secs: f64 = s
            .parse()
            .ok()
            .filter(|v: &f64| *v > 0.0)
            .ok_or_else(|| format!("bad --timeout '{s}' (want seconds > 0)"))?;
        cfg.policy = RunPolicy::single_attempt(Duration::from_secs_f64(secs));
    }

    let template_name =
        opts.get("pipeline").map(String::as_str).unwrap_or("azure_anomaly_detection");
    let template =
        template_by_name(template_name).map_err(|e| format!("--pipeline {template_name}: {e}"))?;

    // --tenants a:9,b:1 sets load-shedding priorities; any tenant seen
    // in the corpus but not listed defaults to priority 5.
    let mut priorities: HashMap<String, u8> = HashMap::new();
    if let Some(spec) = opts.get("tenants") {
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (name, priority) = part
                .split_once(':')
                .ok_or_else(|| format!("bad --tenants entry '{part}' (want name:priority)"))?;
            let priority: u8 =
                priority.parse().map_err(|_| format!("bad priority in '{part}' (want 0-255)"))?;
            priorities.insert(name.to_string(), priority);
        }
    }
    let mut names: Vec<&str> = events.iter().map(|e| e.tenant.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    let specs: Vec<TenantSpec> = names
        .iter()
        .map(|n| TenantSpec::new(n, priorities.get(*n).copied().unwrap_or(5), template.clone()))
        .collect();

    // --dry-run: run the whole-deployment static analysis (exactly what
    // `ServeEngine::open` gates on) and exit before touching the store
    // or replaying a single event.
    if dry_run {
        let report = sintel_serve::analyze_deployment(&cfg, &specs);
        print!("{}", report.render());
        return if report.has_errors() {
            Err("deployment analysis found errors; the engine would refuse to open".to_string())
        } else {
            Ok(())
        };
    }

    let store = open_store(opts)?;
    let persistent = store.is_some();
    let db = store.unwrap_or_else(SintelDb::in_memory);
    let mut engine = ServeEngine::open(db, cfg, specs).map_err(|e| format!("serve: {e}"))?;
    if engine.ticks() > 0 {
        eprintln!(
            "serve: resumed {} tenant session(s) at tick {}",
            engine.tenant_names().len(),
            engine.ticks()
        );
    }

    // --status-addr exposes live introspection over HTTP (off by
    // default). The server only reads published snapshots, so scrape
    // traffic cannot perturb the replay's committed emissions.
    let mut status_server = None;
    if let Some(addr) = opts.get("status-addr") {
        let shared = engine.enable_status();
        let server =
            StatusServer::bind(addr, shared).map_err(|e| format!("--status-addr {addr}: {e}"))?;
        eprintln!(
            "status: /metrics /healthz /tenants /trace on http://{}",
            server.local_addr()
        );
        status_server = Some(server);
    }
    // --tick-log appends one wide-event JSON line per committed tick.
    let mut tick_log = match opts.get("tick-log") {
        Some(path) => Some(
            std::fs::File::create(path).map_err(|e| format!("creating --tick-log {path}: {e}"))?,
        ),
        None => None,
    };
    fn run_tick(
        engine: &mut ServeEngine,
        tick_log: &mut Option<std::fs::File>,
    ) -> Result<Vec<AnomalyEvent>, String> {
        let events = engine.tick().map_err(|e| e.to_string())?;
        if let Some(file) = tick_log {
            if let Some(wide) = engine.last_wide_event() {
                use std::io::Write as _;
                writeln!(file, "{}", wide.to_json_line())
                    .map_err(|e| format!("writing --tick-log: {e}"))?;
            }
        }
        Ok(events)
    }

    let tick_every = parse_usize("tick-every", 64)? as u64;
    let mut emitted = Vec::new();
    let (mut accepted, mut shed) = (0u64, 0u64);
    for event in &events {
        let mut spins = 0u32;
        loop {
            match engine.offer(event).map_err(|e| e.to_string())? {
                Admission::Accepted => {
                    accepted += 1;
                    break;
                }
                Admission::Retry { after_ticks } => {
                    spins += 1;
                    if spins > 1_000 {
                        return Err(format!(
                            "tenant '{}': queue never drained after {spins} retries",
                            event.tenant
                        ));
                    }
                    for _ in 0..after_ticks.max(1) {
                        emitted.extend(run_tick(&mut engine, &mut tick_log)?);
                    }
                }
                Admission::Shed => {
                    shed += 1;
                    break;
                }
            }
        }
        if accepted > 0 && accepted % tick_every == 0 {
            emitted.extend(run_tick(&mut engine, &mut tick_log)?);
        }
    }
    emitted.extend(run_tick(&mut engine, &mut tick_log)?);
    if let Some(server) = status_server.take() {
        server.stop();
    }

    let stats = engine.stats();
    println!(
        "Serve replay: {} events, {accepted} accepted, {shed} shed, {} anomaly event(s), \
         tick {}{}",
        events.len(),
        emitted.len(),
        stats.ticks,
        if persistent { " (checkpointed)" } else { "" }
    );
    println!();
    println!(
        "{:<16} {:>9} {:>6} {:>8} {:>8} {:>7} {:>6} {:>6} {:>9} {:>12}",
        "tenant", "accepted", "shed", "retried", "emitted", "passes", "fails", "trips",
        "degraded", "quarantined"
    );
    for (name, t) in &stats.tenants {
        println!(
            "{name:<16} {:>9} {:>6} {:>8} {:>8} {:>7} {:>6} {:>6} {:>9} {:>12}",
            t.accepted,
            t.shed,
            t.retried,
            t.emitted,
            t.passes_run,
            t.pass_failures,
            t.breaker_trips,
            t.degraded,
            t.quarantined
        );
    }
    let self_events = engine.self_events();
    if !self_events.is_empty() {
        println!();
        println!(
            "self-monitor: {} anomaly event(s) on the engine's own per-tick streams (_self)",
            self_events.len()
        );
    }
    if !emitted.is_empty() {
        println!();
        println!("first anomaly events:");
        for ev in emitted.iter().take(10) {
            println!(
                "  {}/{} seq={} interval [{}, {}] severity {:.3}",
                ev.tenant, ev.signal, ev.seq, ev.start, ev.end, ev.severity
            );
        }
        if emitted.len() > 10 {
            println!("  … and {} more", emitted.len() - 10);
        }
    }
    Ok(())
}

fn open_store(opts: &HashMap<String, String>) -> Result<Option<SintelDb>, String> {
    let Some(dir) = opts.get("store") else {
        if opts.contains_key("store-durability") {
            return Err("--store-durability needs --store DIR".to_string());
        }
        return Ok(None);
    };
    let mut store_opts = StoreOptions::default();
    if let Some(s) = opts.get("store-durability") {
        store_opts.durability = Durability::parse(s).ok_or_else(|| {
            format!("bad --store-durability '{s}' (want snapshot|wal|wal-sync)")
        })?;
    }
    let db = SintelDb::open_with(Path::new(dir), store_opts)
        .map_err(|e| format!("opening --store {dir}: {e}"))?;
    let recovery = db.recovery();
    if !recovery.is_clean() {
        eprintln!(
            "store: recovered {dir}: {} corrupt snapshot(s) quarantined, \
             {} orphan temp file(s) removed, {} WAL batch(es) replayed{}",
            recovery.corrupt.len(),
            recovery.orphans_removed.len(),
            recovery.wal_replayed_batches,
            recovery
                .wal_truncated_at
                .map(|o| format!(", torn tail truncated at byte {o}"))
                .unwrap_or_default(),
        );
    }
    Ok(Some(db))
}

/// Apply `--threads N` as the process-wide worker budget (precedence
/// over `SINTEL_THREADS`; default = available parallelism).
fn apply_threads_flag(opts: &HashMap<String, String>) -> Result<(), String> {
    if let Some(s) = opts.get("threads") {
        let n: usize = s
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("bad --threads '{s}' (want an integer >= 1)"))?;
        sintel_common::set_threads(Some(n));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Result<HashMap<String, String>, String> {
        parse_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parse_flags_happy_path() {
        let opts = flags(&["--signal", "a.csv", "--pipeline", "arima"]).unwrap();
        assert_eq!(opts.get("signal").map(String::as_str), Some("a.csv"));
        assert_eq!(opts.get("pipeline").map(String::as_str), Some("arima"));
    }

    #[test]
    fn parse_flags_rejects_positional_and_dangling() {
        assert!(flags(&["positional"]).is_err());
        assert!(flags(&["--scale"]).is_err());
    }

    #[test]
    fn threads_flag_sets_and_validates_the_budget() {
        let mut opts = HashMap::new();
        assert!(apply_threads_flag(&opts).is_ok(), "absent flag is fine");
        opts.insert("threads".to_string(), "3".to_string());
        apply_threads_flag(&opts).unwrap();
        assert_eq!(sintel_common::configured_threads(), 3);
        sintel_common::set_threads(None);
        for bad in ["0", "-1", "many"] {
            opts.insert("threads".to_string(), bad.to_string());
            assert!(apply_threads_flag(&opts).is_err(), "--threads {bad}");
        }
    }

    #[test]
    fn commands_work_without_io() {
        assert!(cmd_pipelines().is_ok());
        assert!(cmd_primitives().is_ok());
        let mut opts = HashMap::new();
        opts.insert("scale".to_string(), "0.02".to_string());
        assert!(cmd_datasets(&opts).is_ok());
    }

    #[test]
    fn observability_flags_export_trace_and_metrics() {
        let dir = std::env::temp_dir()
            .join(format!("sintel-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let metrics = dir.join("metrics.txt");
        let mut opts = HashMap::new();
        opts.insert("trace-out".to_string(), trace.to_string_lossy().into_owned());
        opts.insert("metrics-out".to_string(), metrics.to_string_lossy().into_owned());
        opts.insert("log-level".to_string(), "warn".to_string());

        let obs = setup_observability(&opts).unwrap();
        {
            let _span = sintel_obs::span("cli.test");
            sintel_obs::counter_add("sintel_cli_test_total", 1);
        }
        finish_observability(&obs).unwrap();

        let events =
            sintel_obs::parse_jsonl(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(events.iter().any(|e| e.name == "cli.test"));
        let text = std::fs::read_to_string(&metrics).unwrap();
        assert!(text.contains("sintel_cli_test_total"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_observability_flags_are_rejected() {
        let mut opts = HashMap::new();
        opts.insert("log-level".to_string(), "loud".to_string());
        assert!(setup_observability(&opts).unwrap_err().contains("--log-level"));
    }

    #[test]
    fn split_analyze_args_separates_targets_from_flags() {
        let args: Vec<String> =
            ["arima", "--all", "--deployment", "--log-level", "warn", "lstm"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let (targets, flags) = split_analyze_args(&args);
        assert_eq!(targets, vec!["arima", "--all", "--deployment", "lstm"]);
        assert_eq!(flags, vec!["--log-level", "warn"]);
    }

    #[test]
    fn split_serve_args_peels_dry_run() {
        let args: Vec<String> = ["--dry-run", "--corpus", "events.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (switches, flags) = split_serve_args(&args);
        assert_eq!(switches, vec!["--dry-run"]);
        assert_eq!(flags, vec!["--corpus", "events.csv"]);
    }

    #[test]
    fn analyze_command_reports_hub_pipelines_clean() {
        let all = vec!["--all".to_string()];
        assert!(cmd_analyze(&all).is_ok());
        let one = vec!["arima".to_string()];
        assert!(cmd_analyze(&one).is_ok());
        assert!(cmd_analyze(&[]).unwrap_err().contains("--all"));
        assert!(
            cmd_analyze(&["--deployment".to_string()]).unwrap_err().contains("--all"),
            "--deployment alone still needs targets"
        );
        let bogus = vec!["not_a_pipeline".to_string()];
        assert!(cmd_analyze(&bogus).is_err());
    }

    #[test]
    fn analyze_deployment_over_hub_roster_is_error_free() {
        // The shipped hub templates must be deployable as tenants under
        // the default serve configuration (ISSUE 9 acceptance).
        let mut targets: Vec<String> = sintel_pipeline::hub::available_pipelines()
            .iter()
            .map(|s| s.to_string())
            .collect();
        targets.push("--deployment".to_string());
        assert!(cmd_analyze(&targets).is_ok());
    }

    #[test]
    fn detect_requires_signal_flag() {
        let err = cmd_detect(&HashMap::new()).unwrap_err();
        assert!(err.contains("--signal"));
        let mut opts = HashMap::new();
        opts.insert("signal".to_string(), "/nonexistent.csv".to_string());
        opts.insert("pipeline".to_string(), "arima".to_string());
        assert!(cmd_detect(&opts).is_err());
    }
}

//! The standardized benchmarking suite (paper §3.4, Figure 4c).
//!
//! One call compares any set of hub pipelines on any set of datasets
//! under identical conditions, reporting both **quality** (precision /
//! recall / F1 under the segment-based metrics of §2.3, mean ± std
//! across signals) and **computational performance** (training time,
//! pipeline latency, peak memory, per-primitive profile).
//!
//! Every signal runs under the fault-isolation layer ([`crate::policy`]):
//! a watchdog thread turns hangs into `Timeout` failures, contained
//! panics and non-finite outputs are classified per
//! [`FailureBreakdown`], and a `pipeline × signal` pair that keeps
//! failing is quarantined through the knowledge base so later sweeps
//! skip it instead of burning their budget again.

use std::time::Duration;

use sintel_datasets::{DatasetConfig, DatasetId};
use sintel_metrics::Scores;
use sintel_pipeline::{hub, Template};
use sintel_store::{Doc, SintelDb};
use sintel_timeseries::Interval;

use crate::policy::{
    classify_pipeline_error, run_with_policy, Failure, FailureBreakdown, FailureKind, RunPolicy,
};
use crate::sintel::score;
use crate::{alloc, Result};

/// Which evaluation metric scores the detections (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Overlapping segment (Algorithm 2) — the Table 3 metric.
    Overlap,
    /// Weighted segment (Algorithm 1).
    Weighted,
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Hub pipeline names to compare.
    pub pipelines: Vec<String>,
    /// Custom templates benchmarked alongside the hub pipelines (the
    /// fault-injection tests ride through here).
    pub extra_templates: Vec<Template>,
    /// Datasets to run on.
    pub datasets: Vec<DatasetId>,
    /// Dataset generation (seed + scale).
    pub data: DatasetConfig,
    /// Scoring metric.
    pub metric: MetricKind,
    /// Rank rows by this metric name when rendering (`"f1"` in Fig 4c).
    pub rank: &'static str,
    /// Per-signal execution budget (watchdog timeout, retries, backoff).
    pub policy: RunPolicy,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        Self {
            pipelines: hub::available_pipelines().iter().map(|s| s.to_string()).collect(),
            extra_templates: Vec::new(),
            datasets: vec![DatasetId::Nab, DatasetId::Nasa, DatasetId::Yahoo],
            data: DatasetConfig::small(),
            metric: MetricKind::Overlap,
            rank: "f1",
            policy: RunPolicy::default(),
        }
    }
}

/// One pipeline × dataset result row.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// Pipeline name.
    pub pipeline: String,
    /// Dataset name.
    pub dataset: String,
    /// Mean scores across the dataset's signals.
    pub mean: Scores,
    /// Standard deviation across signals.
    pub std: Scores,
    /// Signals evaluated.
    pub signals: usize,
    /// Signals whose run failed (excluded from the scores), by class.
    pub failures: FailureBreakdown,
    /// Signals skipped because the pair was quarantined by earlier runs.
    pub quarantined: usize,
    /// Total training time over all signals.
    pub train_time: Duration,
    /// Total detection (latency) time over all signals.
    pub detect_time: Duration,
    /// Peak heap bytes observed during this row's runs (0 when the
    /// tracking allocator is not installed).
    pub peak_memory: usize,
    /// Sum of per-primitive self time (standalone baseline, Fig 7b).
    pub primitive_time: Duration,
}

impl BenchmarkRow {
    /// Framework overhead vs standalone primitives (Figure 7b).
    pub fn overhead_percent(&self) -> f64 {
        let prim = self.primitive_time.as_secs_f64();
        if prim <= 0.0 {
            return 0.0;
        }
        let total = (self.train_time + self.detect_time).as_secs_f64();
        100.0 * (total - prim).max(0.0) / prim
    }
}

/// Resolve the run list: hub pipelines by name, then custom templates.
fn resolve_templates(cfg: &BenchmarkConfig) -> Result<Vec<Template>> {
    let mut templates = Vec::with_capacity(cfg.pipelines.len() + cfg.extra_templates.len());
    for pipeline_name in &cfg.pipelines {
        templates.push(hub::template_by_name(pipeline_name)?);
    }
    templates.extend(cfg.extra_templates.iter().cloned());
    Ok(templates)
}

/// Strikes needed before a `pipeline × signal` pair is quarantined.
const QUARANTINE_STRIKES: usize = 2;

/// Run the benchmark: every pipeline against every dataset
/// (`sintel.benchmark`, Figure 4c).
///
/// Unsupervised protocol, as in the paper: each pipeline is fitted on
/// the signal itself (no labels are used) and detection runs over the
/// same signal; scoring compares detections to the held-back ground
/// truth.
pub fn benchmark(cfg: &BenchmarkConfig) -> Result<Vec<BenchmarkRow>> {
    benchmark_with_db(cfg, None)
}

/// [`benchmark`], with failure bookkeeping in a knowledge base.
///
/// When `db` is given, every exhausted run is recorded in the
/// `run_failures` collection (one strike per attempt) and pairs
/// reaching [`QUARANTINE_STRIKES`] are quarantined: later benchmark
/// calls against the same knowledge base skip them (with a logged
/// reason) instead of re-running a known-bad combination.
pub fn benchmark_with_db(
    cfg: &BenchmarkConfig,
    db: Option<&SintelDb>,
) -> Result<Vec<BenchmarkRow>> {
    let templates = resolve_templates(cfg)?;
    let mut rows = Vec::new();
    for dataset_id in &cfg.datasets {
        let dataset = sintel_datasets::load(*dataset_id, &cfg.data);
        for template in &templates {
            let pipeline_name = template.name.clone();
            let mut per_signal = Vec::new();
            let mut failures = FailureBreakdown::default();
            let mut quarantined = 0usize;
            let mut train_time = Duration::ZERO;
            let mut detect_time = Duration::ZERO;
            let mut primitive_time = Duration::ZERO;
            alloc::reset_peak();

            for labeled in dataset.iter_signals() {
                let signal_name = labeled.signal.name().to_string();
                if let Some(db) = db {
                    if db.is_quarantined(&pipeline_name, &signal_name) {
                        eprintln!(
                            "benchmark: skipping quarantined pair \
                             {pipeline_name} \u{d7} {signal_name}"
                        );
                        quarantined += 1;
                        continue;
                    }
                }

                let task_template = template.clone();
                let task_signal = labeled.signal.clone();
                let attempt = move || {
                    let mut pipeline = task_template
                        .build_default()
                        .map_err(|e| Failure::new(FailureKind::Build, e.to_string()))?;
                    let anomalies = pipeline
                        .fit_detect(&task_signal, &task_signal)
                        .map_err(|e| Failure::new(classify_pipeline_error(&e), e.to_string()))?;
                    let profile = pipeline.profile().clone();
                    Ok((anomalies, profile))
                };
                let (result, attempts) = run_with_policy(&cfg.policy, attempt);
                match result {
                    Ok((anomalies, prof)) => {
                        let pred: Vec<Interval> =
                            anomalies.iter().map(|a| a.interval).collect();
                        per_signal.push(score(&labeled.anomalies, &pred, cfg.metric));
                        train_time += prof.fit_total;
                        detect_time += prof.detect_total;
                        primitive_time += prof.primitive_time();
                    }
                    Err(failure) => {
                        failures.record(failure.kind);
                        if let Some(db) = db {
                            db.add_run_failure(
                                &pipeline_name,
                                &signal_name,
                                failure.kind.label(),
                                &failure.message,
                                attempts as usize,
                            );
                            let strikes = db.failure_strikes(&pipeline_name, &signal_name);
                            if strikes >= QUARANTINE_STRIKES
                                && !db.is_quarantined(&pipeline_name, &signal_name)
                            {
                                eprintln!(
                                    "benchmark: quarantining {pipeline_name} \u{d7} \
                                     {signal_name} after {strikes} strikes ({failure})"
                                );
                                db.add_quarantine(
                                    &pipeline_name,
                                    &signal_name,
                                    &failure.to_string(),
                                );
                            }
                        }
                    }
                }
            }
            rows.push(BenchmarkRow {
                pipeline: pipeline_name,
                dataset: dataset.name.clone(),
                mean: Scores::mean(&per_signal),
                std: Scores::std(&per_signal),
                signals: per_signal.len(),
                failures,
                quarantined,
                train_time,
                detect_time,
                peak_memory: alloc::peak_bytes(),
                primitive_time,
            });
        }
    }
    rows.sort_by(|a, b| {
        a.dataset.cmp(&b.dataset).then(b.mean.f1.total_cmp(&a.mean.f1))
    });
    Ok(rows)
}

/// Persist benchmark rows into the knowledge base as experiments.
pub fn persist_benchmark(db: &SintelDb, rows: &[BenchmarkRow]) {
    for row in rows {
        let exp = db.add_experiment(
            &format!("benchmark/{}/{}", row.dataset, row.pipeline),
            &row.dataset,
            &row.pipeline,
        );
        let doc = Doc::obj()
            .with("experiment_id", exp)
            .with("f1", row.mean.f1)
            .with("precision", row.mean.precision)
            .with("recall", row.mean.recall)
            .with("f1_std", row.std.f1)
            .with("signals", row.signals)
            .with("failures", row.failures.total())
            .with("failures_build", row.failures.build)
            .with("failures_panic", row.failures.panic)
            .with("failures_non_finite", row.failures.non_finite)
            .with("failures_timeout", row.failures.timeout)
            .with("failures_other", row.failures.other)
            .with("quarantined", row.quarantined)
            .with("train_seconds", row.train_time.as_secs_f64())
            .with("detect_seconds", row.detect_time.as_secs_f64())
            .with("peak_memory_bytes", row.peak_memory);
        db.raw().insert("benchmark_results", doc);
    }
}

/// Render rows as a Table 3-style text table (mean ± std per dataset).
pub fn render_table(rows: &[BenchmarkRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:<8} {:>14} {:>16} {:>14} {:>8} {:>18}\n",
        "pipeline", "dataset", "F1", "precision", "recall", "signals", "failures"
    ));
    for row in rows {
        let mut failures = row.failures.summary();
        if row.quarantined > 0 {
            if failures == "-" {
                failures.clear();
            } else {
                failures.push(' ');
            }
            failures.push_str(&format!("skip\u{d7}{}", row.quarantined));
        }
        out.push_str(&format!(
            "{:<26} {:<8} {:>6.3} ± {:<5.2} {:>8.3} ± {:<5.2} {:>6.3} ± {:<5.2} {:>5} {:>18}\n",
            row.pipeline,
            row.dataset,
            row.mean.f1,
            row.std.f1,
            row.mean.precision,
            row.std.precision,
            row.mean.recall,
            row.std.recall,
            row.signals,
            failures,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchmarkConfig {
        BenchmarkConfig {
            pipelines: vec!["arima".into(), "azure_anomaly_detection".into()],
            datasets: vec![DatasetId::Nab],
            data: DatasetConfig { seed: 42, signal_scale: 0.05, length_scale: 0.08 },
            metric: MetricKind::Overlap,
            rank: "f1",
            ..BenchmarkConfig::default()
        }
    }

    #[test]
    fn benchmark_produces_rows_with_scores() {
        let rows = benchmark(&tiny_config()).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.dataset, "NAB");
            assert!(row.signals > 0, "{row:?}");
            assert_eq!(row.failures.total(), 0, "{row:?}");
            assert!(row.mean.f1 >= 0.0 && row.mean.f1 <= 1.0);
            assert!(row.train_time + row.detect_time > Duration::ZERO);
        }
        // Rows are ranked by F1 within a dataset.
        assert!(rows[0].mean.f1 >= rows[1].mean.f1);
    }

    #[test]
    fn render_table_contains_all_rows() {
        let rows = benchmark(&tiny_config()).unwrap();
        let table = render_table(&rows);
        assert!(table.contains("arima"));
        assert!(table.contains("azure_anomaly_detection"));
        assert!(table.contains("F1"));
        assert!(table.contains("failures"));
    }

    #[test]
    fn persist_benchmark_writes_results() {
        let rows = benchmark(&tiny_config()).unwrap();
        let db = SintelDb::in_memory();
        persist_benchmark(&db, &rows);
        use sintel_store::Filter;
        assert_eq!(db.raw().count("benchmark_results", &Filter::All), rows.len());
        assert_eq!(
            db.raw().count(sintel_store::schema::collections::EXPERIMENTS, &Filter::All),
            rows.len()
        );
        let doc = db.raw().find("benchmark_results", &Filter::All).pop().unwrap();
        assert!(doc.get("failures_timeout").is_some());
        assert!(doc.get("quarantined").is_some());
    }

    #[test]
    fn extra_templates_benchmark_alongside_hub_pipelines() {
        let mut cfg = tiny_config();
        cfg.pipelines = vec!["arima".into()];
        cfg.extra_templates = vec![Template::from_names(
            "custom_std_arima",
            &[
                "time_segments_aggregate",
                "SimpleImputer",
                "StandardScaler",
                "arima",
                "regression_errors",
                "find_anomalies",
            ],
        )];
        let rows = benchmark(&cfg).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.pipeline == "custom_std_arima"));
    }
}

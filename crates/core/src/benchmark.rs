//! The standardized benchmarking suite (paper §3.4, Figure 4c).
//!
//! One call compares any set of hub pipelines on any set of datasets
//! under identical conditions, reporting both **quality** (precision /
//! recall / F1 under the segment-based metrics of §2.3, mean ± std
//! across signals) and **computational performance** (training time,
//! pipeline latency, peak memory, per-primitive profile).
//!
//! Every signal runs under the fault-isolation layer ([`crate::policy`]):
//! a watchdog thread turns hangs into `Timeout` failures, contained
//! panics and non-finite outputs are classified per
//! [`FailureBreakdown`], and a `pipeline × signal` pair that keeps
//! failing is quarantined through the knowledge base so later sweeps
//! skip it instead of burning their budget again.

use std::time::Duration;

use sintel_datasets::{DatasetConfig, DatasetId};
use sintel_metrics::Scores;
use sintel_obs::FieldValue;
use sintel_pipeline::{hub, Template};
use sintel_store::schema::collections as schema_collections;
use sintel_store::{Doc, SintelDb};
use sintel_timeseries::Interval;

use crate::policy::{
    classify_pipeline_error, run_with_policy, Failure, FailureBreakdown, FailureKind, RunPolicy,
};
use crate::sintel::score;
use crate::{alloc, Result};

/// Which evaluation metric scores the detections (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Overlapping segment (Algorithm 2) — the Table 3 metric.
    Overlap,
    /// Weighted segment (Algorithm 1).
    Weighted,
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Hub pipeline names to compare.
    pub pipelines: Vec<String>,
    /// Custom templates benchmarked alongside the hub pipelines (the
    /// fault-injection tests ride through here).
    pub extra_templates: Vec<Template>,
    /// Datasets to run on.
    pub datasets: Vec<DatasetId>,
    /// Dataset generation (seed + scale).
    pub data: DatasetConfig,
    /// Scoring metric.
    pub metric: MetricKind,
    /// Rank rows by this metric name when rendering (`"f1"` in Fig 4c).
    pub rank: &'static str,
    /// Per-signal execution budget (watchdog timeout, retries, backoff).
    pub policy: RunPolicy,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        Self {
            pipelines: hub::available_pipelines().iter().map(|s| s.to_string()).collect(),
            extra_templates: Vec::new(),
            datasets: vec![DatasetId::Nab, DatasetId::Nasa, DatasetId::Yahoo],
            data: DatasetConfig::small(),
            metric: MetricKind::Overlap,
            rank: "f1",
            policy: RunPolicy::default(),
        }
    }
}

/// One pipeline × dataset result row.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// Pipeline name.
    pub pipeline: String,
    /// Dataset name.
    pub dataset: String,
    /// Mean scores across the dataset's signals.
    pub mean: Scores,
    /// Standard deviation across signals.
    pub std: Scores,
    /// Signals evaluated.
    pub signals: usize,
    /// Signals whose run failed (excluded from the scores), by class.
    pub failures: FailureBreakdown,
    /// Compact static-analysis preflight summary (`"clean"` or
    /// `SAxxx×n` counts). Rows with Error diagnostics never execute —
    /// every signal is recorded as [`FailureKind::Rejected`].
    pub diagnostics: String,
    /// Signals skipped because the pair was quarantined by earlier runs.
    pub quarantined: usize,
    /// Total training time over all signals.
    pub train_time: Duration,
    /// Total detection (latency) time over all signals.
    pub detect_time: Duration,
    /// Peak heap bytes observed during this row's runs (0 when the
    /// tracking allocator is not installed).
    pub peak_memory: usize,
    /// Sum of per-primitive self time (standalone baseline, Fig 7b).
    pub primitive_time: Duration,
}

impl BenchmarkRow {
    /// Framework overhead vs standalone primitives (Figure 7b).
    pub fn overhead_percent(&self) -> f64 {
        let prim = self.primitive_time.as_secs_f64();
        if prim <= 0.0 {
            return 0.0;
        }
        let total = (self.train_time + self.detect_time).as_secs_f64();
        100.0 * (total - prim).max(0.0) / prim
    }
}

/// Resolve the run list: hub pipelines by name, then custom templates.
fn resolve_templates(cfg: &BenchmarkConfig) -> Result<Vec<Template>> {
    let mut templates = Vec::with_capacity(cfg.pipelines.len() + cfg.extra_templates.len());
    for pipeline_name in &cfg.pipelines {
        templates.push(hub::template_by_name(pipeline_name)?);
    }
    templates.extend(cfg.extra_templates.iter().cloned());
    Ok(templates)
}

/// Strikes needed before a `pipeline × signal` pair is quarantined.
const QUARANTINE_STRIKES: usize = 2;

/// Log target of the benchmark runner.
const TARGET: &str = "sintel::benchmark";

/// Pre-register the benchmark's counters at zero so a clean run still
/// dumps explicit failure-kind counters (a dashboard reading the
/// snapshot can tell "no failures" from "not instrumented").
fn preregister_metrics() {
    for kind in FailureKind::ALL {
        sintel_obs::counter_add(
            &sintel_obs::labeled("sintel_benchmark_failures_total", &[("kind", kind.label())]),
            0,
        );
    }
    sintel_obs::counter_add("sintel_benchmark_trials_total", 0);
    sintel_obs::counter_add("sintel_benchmark_quarantine_skips_total", 0);
    sintel_obs::counter_add("sintel_benchmark_quarantine_added_total", 0);
}

/// Export the run's health — quarantine and failure-breakdown state —
/// as gauges, so a benchmark run is inspectable from the metrics
/// snapshot alone without reading the knowledge base.
fn export_health_gauges(rows: &[BenchmarkRow], db: Option<&SintelDb>) {
    let mut breakdown = FailureBreakdown::default();
    let (mut scored, mut skipped) = (0usize, 0usize);
    for row in rows {
        breakdown.merge(&row.failures);
        scored += row.signals;
        skipped += row.quarantined;
    }
    sintel_obs::gauge_set("sintel_benchmark_rows", rows.len() as f64);
    sintel_obs::gauge_set("sintel_benchmark_signals_scored", scored as f64);
    sintel_obs::gauge_set("sintel_benchmark_signals_failed", breakdown.total() as f64);
    sintel_obs::gauge_set("sintel_benchmark_signals_quarantine_skipped", skipped as f64);
    for kind in FailureKind::ALL {
        let count = match kind {
            FailureKind::Build => breakdown.build,
            FailureKind::Panic => breakdown.panic,
            FailureKind::NonFinite => breakdown.non_finite,
            FailureKind::Timeout => breakdown.timeout,
            FailureKind::Rejected => breakdown.rejected,
            FailureKind::Other => breakdown.other,
        };
        sintel_obs::gauge_set(
            &sintel_obs::labeled("sintel_benchmark_failure_breakdown", &[("kind", kind.label())]),
            count as f64,
        );
    }
    if let Some(db) = db {
        use sintel_store::Filter;
        sintel_obs::gauge_set(
            "sintel_quarantine_pairs",
            db.raw().count(schema_collections::QUARANTINE, &Filter::All) as f64,
        );
        sintel_obs::gauge_set(
            "sintel_run_failure_records",
            db.raw().count(schema_collections::RUN_FAILURES, &Filter::All) as f64,
        );
    }
}

/// Persist the global metrics registry's snapshot into the knowledge
/// base (`metrics_snapshots` collection) under a run label, in both
/// exporter formats. Returns the stored document id.
pub fn persist_metrics_snapshot(db: &SintelDb, run: &str) -> u64 {
    let snapshot = sintel_obs::global().snapshot();
    db.add_metrics_snapshot(run, &snapshot.to_prometheus(), &snapshot.to_json())
}

/// Run the benchmark: every pipeline against every dataset
/// (`sintel.benchmark`, Figure 4c).
///
/// Unsupervised protocol, as in the paper: each pipeline is fitted on
/// the signal itself (no labels are used) and detection runs over the
/// same signal; scoring compares detections to the held-back ground
/// truth.
pub fn benchmark(cfg: &BenchmarkConfig) -> Result<Vec<BenchmarkRow>> {
    benchmark_with_db(cfg, None)
}

/// [`benchmark`], with failure bookkeeping in a knowledge base.
///
/// When `db` is given, every exhausted run is recorded in the
/// `run_failures` collection (one strike per attempt) and pairs
/// reaching [`QUARANTINE_STRIKES`] are quarantined: later benchmark
/// calls against the same knowledge base skip them (with a logged
/// reason) instead of re-running a known-bad combination.
pub fn benchmark_with_db(
    cfg: &BenchmarkConfig,
    db: Option<&SintelDb>,
) -> Result<Vec<BenchmarkRow>> {
    Ok(benchmark_report_with_db(cfg, db)?.rows)
}

/// Benchmark rows plus the run's aggregate performance: `cpu_time` is
/// the sum of per-signal pipeline time (what a serial sweep would have
/// spent in pipelines), `wall_time` the actual elapsed time — their
/// ratio makes the parallel speedup visible.
#[derive(Debug, Clone)]
pub struct BenchmarkReport {
    /// The result rows, ranked as [`benchmark`] ranks them.
    pub rows: Vec<BenchmarkRow>,
    /// Elapsed wall-clock time of the whole sweep.
    pub wall_time: Duration,
    /// Summed pipeline (train + detect) time across all signals.
    pub cpu_time: Duration,
    /// Worker-thread budget the sweep ran with.
    pub threads: usize,
}

impl BenchmarkReport {
    /// `cpu_time / wall_time` — parallel efficiency of the sweep
    /// (≈1 serial, →`threads` under perfect scaling).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        self.cpu_time.as_secs_f64() / wall
    }
}

/// [`benchmark_with_db`], also reporting cpu/wall time and thread count.
pub fn benchmark_report(cfg: &BenchmarkConfig) -> Result<BenchmarkReport> {
    benchmark_report_with_db(cfg, None)
}

/// The full benchmark entry point: plan serially, execute cells on the
/// [`sintel_common::par`] pool, fold results serially in plan order.
pub fn benchmark_report_with_db(
    cfg: &BenchmarkConfig,
    db: Option<&SintelDb>,
) -> Result<BenchmarkReport> {
    let sweep_started = std::time::Instant::now();
    let templates = resolve_templates(cfg)?;
    preregister_metrics();

    // Group commit: every knowledge-base write of this run (preflight
    // diagnostics, run failures, quarantine strikes, the metrics
    // snapshot) is buffered and appended as ONE WAL record when the
    // run completes — one fsync per benchmark instead of one per
    // write, and a crash mid-run persists either the whole run's
    // bookkeeping or none of it. All writes happen in the serial plan
    // and fold sections, so the record's contents are identical at any
    // `SINTEL_THREADS`.
    let store_batch = db.map(SintelDb::batch);

    // Preflight: analyse each template once, up front. Warn-level
    // diagnostics are logged; Error-level ones mark the template as
    // rejected — its rows never execute a single signal. All diagnostics
    // are persisted to the knowledge base when one is attached.
    let preflights: Vec<sintel_analyze::Report> =
        templates.iter().map(|t| t.analyze()).collect();
    for report in &preflights {
        for diag in &report.diagnostics {
            sintel_obs::warn!(
                TARGET,
                format!("preflight diagnostic: {}", diag.message),
                pipeline = report.pipeline.as_str(),
                code = diag.code.as_str(),
                severity = diag.severity.label(),
                step = diag.step,
                primitive = diag.primitive.as_str(),
            );
            if let Some(db) = db {
                db.add_diagnostic(
                    &report.pipeline,
                    diag.code.as_str(),
                    diag.severity.label(),
                    &diag.primitive,
                    &diag.message,
                );
            }
        }
    }

    // ---- Plan (serial) -------------------------------------------------
    //
    // The sweep is decomposed into (dataset, pipeline, signal) cells up
    // front, on one thread. Every decision that depends on shared state
    // — preflight rejection, quarantine lookup — is made here, and every
    // shared-state *write* happens in the fold below, also on one
    // thread, in cell order. The parallel section in between executes
    // pure cells only, so the whole benchmark is bitwise-identical at
    // any `SINTEL_THREADS` value.
    let datasets: Vec<sintel_datasets::Dataset> =
        cfg.datasets.iter().map(|id| sintel_datasets::load(*id, &cfg.data)).collect();

    let run_span = sintel_obs::span_with(
        "benchmark.run",
        &[("threads", FieldValue::UInt(sintel_common::configured_threads() as u64))],
    );
    let run_id = run_span.id();

    /// What the plan decided for one signal of a row.
    enum SignalPlan {
        /// Template preflight has Error diagnostics: never executed.
        Rejected,
        /// Pair quarantined by earlier runs: skipped.
        Quarantined,
        /// Executable; index into the flat cell list.
        Execute(usize),
    }
    struct RowPlan {
        dataset_idx: usize,
        template_idx: usize,
        signals: Vec<SignalPlan>,
        span: sintel_obs::SpanGuard,
    }
    struct Cell<'a> {
        template: &'a Template,
        labeled: &'a sintel_datasets::LabeledSignal,
        row_span_id: u64,
    }

    let mut row_plans: Vec<RowPlan> = Vec::new();
    let mut cells: Vec<Cell<'_>> = Vec::new();
    for (dataset_idx, dataset) in datasets.iter().enumerate() {
        for (template_idx, (template, preflight)) in
            templates.iter().zip(&preflights).enumerate()
        {
            // Row spans are opened up front (they bracket their cells'
            // execution) with an explicit parent: several are open at
            // once, so stack-inferred nesting would chain them.
            let span = sintel_obs::span_with_parent(
                "benchmark.row",
                &[
                    ("pipeline", FieldValue::from(template.name.as_str())),
                    ("dataset", FieldValue::from(dataset.name.as_str())),
                ],
                Some(run_id),
            );
            let row_span_id = span.id();
            let mut signals = Vec::new();
            for labeled in dataset.iter_signals() {
                if preflight.has_errors() {
                    signals.push(SignalPlan::Rejected);
                    continue;
                }
                if let Some(db) = db {
                    if db.is_quarantined(&template.name, labeled.signal.name()) {
                        sintel_obs::counter_add("sintel_benchmark_quarantine_skips_total", 1);
                        sintel_obs::info!(
                            TARGET,
                            "skipping quarantined pair",
                            pipeline = template.name.as_str(),
                            signal = labeled.signal.name(),
                        );
                        signals.push(SignalPlan::Quarantined);
                        continue;
                    }
                }
                signals.push(SignalPlan::Execute(cells.len()));
                cells.push(Cell { template, labeled, row_span_id });
            }
            row_plans.push(RowPlan { dataset_idx, template_idx, signals, span });
        }
    }

    // ---- Execute (parallel) --------------------------------------------
    //
    // Each cell is pure: build → fit/detect → score, under the watchdog
    // policy. Trial spans are attributed to the cell's row span
    // explicitly (span stacks are thread-local; inference would attach
    // them to whatever the worker had open). Counter increments are
    // commutative, so totals are exact regardless of interleaving.
    alloc::reset_peak();
    let outcomes = sintel_common::par_try_map(cells.len(), |i| {
        // In range: `i` comes from `0..cells.len()`.
        #[allow(clippy::indexing_slicing)]
        let cell = &cells[i];
        sintel_obs::counter_add("sintel_benchmark_trials_total", 1);
        let task_template = cell.template.clone();
        let task_signal = cell.labeled.signal.clone();
        let row_span_id = cell.row_span_id;
        // The attempt (and therefore its `benchmark.trial` span and the
        // pipeline spans nested inside it) runs on the watchdog thread —
        // one trial span per attempt.
        let attempt = move || {
            let _trial = sintel_obs::span_with_parent(
                "benchmark.trial",
                &[
                    ("pipeline", FieldValue::from(task_template.name.as_str())),
                    ("signal", FieldValue::from(task_signal.name())),
                ],
                Some(row_span_id),
            );
            let mut pipeline = task_template
                .build_default()
                .map_err(|e| Failure::new(FailureKind::Build, e.to_string()))?;
            let anomalies = pipeline
                .fit_detect(&task_signal, &task_signal)
                .map_err(|e| Failure::new(classify_pipeline_error(&e), e.to_string()))?;
            let profile = pipeline.profile().clone();
            Ok((anomalies, profile))
        };
        let (result, attempts) = run_with_policy(&cfg.policy, attempt);
        let scored = result.map(|(anomalies, prof)| {
            let pred: Vec<Interval> = anomalies.iter().map(|a| a.interval).collect();
            (score(&cell.labeled.anomalies, &pred, cfg.metric), prof)
        });
        (scored, attempts)
    });
    let peak_memory = alloc::peak_bytes();
    // Each outcome is consumed exactly once by its planned cell below.
    let mut outcomes: Vec<Option<_>> = outcomes.into_iter().map(Some).collect();

    // ---- Fold (serial, in plan order) ----------------------------------
    //
    // All observable side effects — failure counters and logs,
    // knowledge-base writes, quarantine strikes — are applied here in
    // cell order, exactly as the serial sweep applied them.
    let mut rows = Vec::new();
    for row_plan in row_plans {
        // In range: plan indices come from the enumerations above.
        #[allow(clippy::indexing_slicing)]
        let (dataset, template, preflight) = (
            &datasets[row_plan.dataset_idx],
            &templates[row_plan.template_idx],
            &preflights[row_plan.template_idx],
        );
        let pipeline_name = template.name.clone();
        let mut per_signal = Vec::new();
        let mut failures = FailureBreakdown::default();
        let mut quarantined = 0usize;
        let mut train_time = Duration::ZERO;
        let mut detect_time = Duration::ZERO;
        let mut primitive_time = Duration::ZERO;

        // Plans were built in `iter_signals` order; zip restores the pairing.
        for (plan, labeled) in row_plan.signals.iter().zip(dataset.iter_signals()) {
            let cell_idx = match plan {
                SignalPlan::Rejected => {
                    // Statically rejected: never executed, not a crash.
                    failures.record(FailureKind::Rejected);
                    sintel_obs::counter_add(
                        &sintel_obs::labeled(
                            "sintel_benchmark_failures_total",
                            &[("kind", FailureKind::Rejected.label())],
                        ),
                        1,
                    );
                    continue;
                }
                SignalPlan::Quarantined => {
                    quarantined += 1;
                    continue;
                }
                SignalPlan::Execute(idx) => *idx,
            };
            let signal_name = labeled.signal.name().to_string();
            // A task panic outside the watchdog (scoring, bookkeeping)
            // is routed into the taxonomy instead of poisoning the run.
            // In range: every `Execute` index points into `outcomes`.
            #[allow(clippy::indexing_slicing)]
            let (result, attempts) = match outcomes[cell_idx].take() {
                Some(Ok(outcome)) => outcome,
                Some(Err(task_panic)) => {
                    (Err(Failure::new(FailureKind::Panic, task_panic.message)), 0)
                }
                None => (
                    Err(Failure::new(FailureKind::Other, "cell produced no outcome")),
                    0,
                ),
            };
            match result {
                Ok((scores, prof)) => {
                    per_signal.push(scores);
                    train_time += prof.fit_total;
                    detect_time += prof.detect_total;
                    primitive_time += prof.primitive_time();
                }
                Err(failure) => {
                    failures.record(failure.kind);
                    sintel_obs::counter_add(
                        &sintel_obs::labeled(
                            "sintel_benchmark_failures_total",
                            &[("kind", failure.kind.label())],
                        ),
                        1,
                    );
                    sintel_obs::warn!(
                        TARGET,
                        format!("signal run exhausted its policy: {}", failure.message),
                        pipeline = pipeline_name.as_str(),
                        signal = signal_name.as_str(),
                        kind = failure.kind.label(),
                        attempts = attempts,
                    );
                    if let Some(db) = db {
                        db.add_run_failure(
                            &pipeline_name,
                            &signal_name,
                            failure.kind.label(),
                            &failure.message,
                            attempts as usize,
                        );
                        let strikes = db.failure_strikes(&pipeline_name, &signal_name);
                        if strikes >= QUARANTINE_STRIKES
                            && !db.is_quarantined(&pipeline_name, &signal_name)
                        {
                            sintel_obs::counter_add(
                                "sintel_benchmark_quarantine_added_total",
                                1,
                            );
                            sintel_obs::warn!(
                                TARGET,
                                "quarantining pipeline × signal pair",
                                pipeline = pipeline_name.as_str(),
                                signal = signal_name.as_str(),
                                strikes = strikes,
                                reason = failure.to_string(),
                            );
                            db.add_quarantine(
                                &pipeline_name,
                                &signal_name,
                                &failure.to_string(),
                            );
                        }
                    }
                }
            }
        }
        row_plan.span.close();
        rows.push(BenchmarkRow {
            pipeline: pipeline_name,
            dataset: dataset.name.clone(),
            mean: Scores::mean(&per_signal),
            std: Scores::std(&per_signal),
            signals: per_signal.len(),
            failures,
            diagnostics: preflight.summary(),
            quarantined,
            train_time,
            detect_time,
            // Run-wide heap peak: per-row attribution is meaningless
            // once rows execute concurrently, and a run-wide number is
            // the same at every thread count's fold.
            peak_memory,
            primitive_time,
        });
    }
    run_span.close();
    rows.sort_by(|a, b| {
        a.dataset.cmp(&b.dataset).then(b.mean.f1.total_cmp(&a.mean.f1))
    });
    export_health_gauges(&rows, db);
    if let Some(db) = db {
        persist_metrics_snapshot(db, "benchmark");
    }
    if let Some(scope) = store_batch {
        if let Err(e) = scope.commit() {
            sintel_obs::warn!(
                TARGET,
                format!("benchmark knowledge-base batch did not reach the log: {e}"),
            );
        }
    }
    let cpu_time = rows.iter().map(|r| r.train_time + r.detect_time).sum();
    Ok(BenchmarkReport {
        rows,
        wall_time: sweep_started.elapsed(),
        cpu_time,
        threads: sintel_common::configured_threads(),
    })
}

/// Persist benchmark rows into the knowledge base as experiments.
/// Committed as one WAL batch: either every row's experiment+result
/// pair lands, or none do.
pub fn persist_benchmark(db: &SintelDb, rows: &[BenchmarkRow]) {
    let scope = db.batch();
    for row in rows {
        let exp = db.add_experiment(
            &format!("benchmark/{}/{}", row.dataset, row.pipeline),
            &row.dataset,
            &row.pipeline,
        );
        let doc = Doc::obj()
            .with("experiment_id", exp)
            .with("f1", row.mean.f1)
            .with("precision", row.mean.precision)
            .with("recall", row.mean.recall)
            .with("f1_std", row.std.f1)
            .with("signals", row.signals)
            .with("failures", row.failures.total())
            .with("failures_build", row.failures.build)
            .with("failures_panic", row.failures.panic)
            .with("failures_non_finite", row.failures.non_finite)
            .with("failures_timeout", row.failures.timeout)
            .with("failures_rejected", row.failures.rejected)
            .with("failures_other", row.failures.other)
            .with("diagnostics", row.diagnostics.as_str())
            .with("quarantined", row.quarantined)
            .with("train_seconds", row.train_time.as_secs_f64())
            .with("detect_seconds", row.detect_time.as_secs_f64())
            .with("peak_memory_bytes", row.peak_memory);
        db.raw().insert("benchmark_results", doc);
    }
    if let Err(e) = scope.commit() {
        sintel_obs::warn!(
            TARGET,
            format!("benchmark results batch did not reach the log: {e}"),
        );
    }
}

/// Render rows as a Table 3-style text table (mean ± std per dataset).
pub fn render_table(rows: &[BenchmarkRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:<8} {:>14} {:>16} {:>14} {:>8} {:>18} {:>14}\n",
        "pipeline", "dataset", "F1", "precision", "recall", "signals", "failures", "diagnostics"
    ));
    for row in rows {
        let mut failures = row.failures.summary();
        if row.quarantined > 0 {
            if failures == "-" {
                failures.clear();
            } else {
                failures.push(' ');
            }
            failures.push_str(&format!("skip\u{d7}{}", row.quarantined));
        }
        out.push_str(&format!(
            "{:<26} {:<8} {:>6.3} ± {:<5.2} {:>8.3} ± {:<5.2} {:>6.3} ± {:<5.2} {:>5} {:>18} {:>14}\n",
            row.pipeline,
            row.dataset,
            row.mean.f1,
            row.std.f1,
            row.mean.precision,
            row.std.precision,
            row.mean.recall,
            row.std.recall,
            row.signals,
            failures,
            row.diagnostics,
        ));
    }
    out
}

/// Render the run's computational performance: per-row pipeline times
/// plus a footer with summed `cpu_time`, elapsed `wall_time`, the
/// speedup ratio and the thread budget.
///
/// Kept separate from [`render_table`]: quality tables are part of the
/// bitwise determinism contract (identical at every thread count),
/// while wall-clock numbers are inherently machine- and run-specific.
pub fn render_perf_table(report: &BenchmarkReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:<8} {:>12} {:>12} {:>12}\n",
        "pipeline", "dataset", "train", "detect", "cpu"
    ));
    for row in &report.rows {
        out.push_str(&format!(
            "{:<26} {:<8} {:>10.3}s {:>10.3}s {:>10.3}s\n",
            row.pipeline,
            row.dataset,
            row.train_time.as_secs_f64(),
            row.detect_time.as_secs_f64(),
            (row.train_time + row.detect_time).as_secs_f64(),
        ));
    }
    out.push_str(&format!(
        "cpu_time {:.3}s  wall_time {:.3}s  speedup {:.2}x  threads {}\n",
        report.cpu_time.as_secs_f64(),
        report.wall_time.as_secs_f64(),
        report.speedup(),
        report.threads,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchmarkConfig {
        BenchmarkConfig {
            pipelines: vec!["arima".into(), "azure_anomaly_detection".into()],
            datasets: vec![DatasetId::Nab],
            data: DatasetConfig { seed: 42, signal_scale: 0.05, length_scale: 0.08 },
            metric: MetricKind::Overlap,
            rank: "f1",
            ..BenchmarkConfig::default()
        }
    }

    #[test]
    fn benchmark_produces_rows_with_scores() {
        let rows = benchmark(&tiny_config()).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.dataset, "NAB");
            assert!(row.signals > 0, "{row:?}");
            assert_eq!(row.failures.total(), 0, "{row:?}");
            assert_eq!(row.diagnostics, "clean", "{row:?}");
            assert!(row.mean.f1 >= 0.0 && row.mean.f1 <= 1.0);
            assert!(row.train_time + row.detect_time > Duration::ZERO);
        }
        // Rows are ranked by F1 within a dataset.
        assert!(rows[0].mean.f1 >= rows[1].mean.f1);
    }

    #[test]
    fn render_table_contains_all_rows() {
        let rows = benchmark(&tiny_config()).unwrap();
        let table = render_table(&rows);
        assert!(table.contains("arima"));
        assert!(table.contains("azure_anomaly_detection"));
        assert!(table.contains("F1"));
        assert!(table.contains("failures"));
    }

    #[test]
    fn persist_benchmark_writes_results() {
        let rows = benchmark(&tiny_config()).unwrap();
        let db = SintelDb::in_memory();
        persist_benchmark(&db, &rows);
        use sintel_store::Filter;
        assert_eq!(db.raw().count("benchmark_results", &Filter::All), rows.len());
        assert_eq!(
            db.raw().count(sintel_store::schema::collections::EXPERIMENTS, &Filter::All),
            rows.len()
        );
        let doc = db.raw().find("benchmark_results", &Filter::All).pop().unwrap();
        assert!(doc.get("failures_timeout").is_some());
        assert!(doc.get("quarantined").is_some());
    }

    #[test]
    fn extra_templates_benchmark_alongside_hub_pipelines() {
        let mut cfg = tiny_config();
        cfg.pipelines = vec!["arima".into()];
        cfg.extra_templates = vec![Template::from_names(
            "custom_std_arima",
            &[
                "time_segments_aggregate",
                "SimpleImputer",
                "StandardScaler",
                "arima",
                "regression_errors",
                "find_anomalies",
            ],
        )];
        let rows = benchmark(&cfg).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.pipeline == "custom_std_arima"));
    }

    #[test]
    fn statically_broken_template_rows_are_rejected_not_executed() {
        let mut cfg = tiny_config();
        cfg.pipelines = vec!["arima".into()];
        // lstm_regressor with no rolling_window_sequences upstream:
        // SA001 dangling reads of 'windows'/'targets'.
        cfg.extra_templates = vec![Template::from_names(
            "miswired_lstm",
            &[
                "time_segments_aggregate",
                "SimpleImputer",
                "MinMaxScaler",
                "lstm_regressor",
                "regression_errors",
                "find_anomalies",
            ],
        )];
        let db = SintelDb::in_memory();
        let rows = benchmark_with_db(&cfg, Some(&db)).unwrap();
        let rejected = rows.iter().find(|r| r.pipeline == "miswired_lstm").unwrap();
        assert_eq!(rejected.signals, 0, "{rejected:?}");
        assert!(rejected.failures.rejected > 0, "{rejected:?}");
        assert_eq!(rejected.failures.total(), rejected.failures.rejected);
        assert!(rejected.diagnostics.contains("SA001"), "{rejected:?}");
        // The healthy pipeline still ran normally alongside it.
        let healthy = rows.iter().find(|r| r.pipeline == "arima").unwrap();
        assert!(healthy.signals > 0);
        assert_eq!(healthy.failures.total(), 0);
        // Diagnostics were persisted to the knowledge base, and the
        // rendered table carries the new column.
        assert!(!db.diagnostics_for_pipeline("miswired_lstm").is_empty());
        assert!(db.diagnostics_for_pipeline("arima").is_empty());
        let table = render_table(&rows);
        assert!(table.contains("diagnostics"));
        assert!(table.contains("SA001"));
    }
}

//! A RESTful-style request/response layer over the knowledge base —
//! the local stand-in for the `sintel-api` web service (Table 1's
//! "RESTful API" row). Routing and verbs mirror the real service; the
//! transport is in-process.

use sintel_store::{schema::collections, Doc, Filter, SintelDb};

/// HTTP-style method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read.
    Get,
    /// Create.
    Post,
    /// Partial update.
    Patch,
    /// Remove.
    Delete,
}

/// A request against the API.
#[derive(Debug, Clone)]
pub struct Request {
    /// Verb.
    pub method: Method,
    /// Path, e.g. `/events` or `/events/3`.
    pub path: String,
    /// JSON body for Post/Patch.
    pub body: Option<Doc>,
}

impl Request {
    /// GET helper.
    pub fn get(path: &str) -> Self {
        Self { method: Method::Get, path: path.to_string(), body: None }
    }

    /// POST helper.
    pub fn post(path: &str, body: Doc) -> Self {
        Self { method: Method::Post, path: path.to_string(), body: Some(body) }
    }

    /// PATCH helper.
    pub fn patch(path: &str, body: Doc) -> Self {
        Self { method: Method::Patch, path: path.to_string(), body: Some(body) }
    }

    /// DELETE helper.
    pub fn delete(path: &str) -> Self {
        Self { method: Method::Delete, path: path.to_string(), body: None }
    }
}

/// An API response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// 200 with a JSON body.
    Ok(Doc),
    /// 201 with the created id.
    Created(u64),
    /// 204.
    NoContent,
    /// 4xx with a message.
    Error(String),
}

/// The API server: routes requests onto the knowledge base.
pub struct RestApi {
    db: SintelDb,
}

/// Resources exposed by the API (collection routes).
const RESOURCES: &[&str] = &[
    collections::DATASETS,
    collections::SIGNALS,
    collections::TEMPLATES,
    collections::PIPELINES,
    collections::EXPERIMENTS,
    collections::SIGNALRUNS,
    collections::EVENTS,
    collections::ANNOTATIONS,
    collections::COMMENTS,
    collections::USERS,
];

impl RestApi {
    /// Wrap a knowledge base.
    pub fn new(db: SintelDb) -> Self {
        Self { db }
    }

    /// Borrow the underlying knowledge base.
    pub fn db(&self) -> &SintelDb {
        &self.db
    }

    /// Handle one request.
    pub fn handle(&self, request: &Request) -> Response {
        let parts: Vec<&str> =
            request.path.trim_matches('/').split('/').filter(|p| !p.is_empty()).collect();
        match parts.as_slice() {
            [resource] if RESOURCES.contains(resource) => {
                self.collection_route(resource, request)
            }
            [resource, id] if RESOURCES.contains(resource) => {
                let Ok(id) = id.parse::<u64>() else {
                    return Response::Error(format!("invalid id '{id}'"));
                };
                self.item_route(resource, id, request)
            }
            _ => Response::Error(format!("no route for '{}'", request.path)),
        }
    }

    fn collection_route(&self, resource: &str, request: &Request) -> Response {
        match request.method {
            Method::Get => {
                let docs = self.db.raw().find(resource, &Filter::All);
                Response::Ok(Doc::Arr(docs))
            }
            Method::Post => match &request.body {
                Some(body @ Doc::Obj(_)) => {
                    Response::Created(self.db.raw().insert(resource, body.clone()))
                }
                _ => Response::Error("POST requires an object body".into()),
            },
            _ => Response::Error("method not allowed on collection".into()),
        }
    }

    fn item_route(&self, resource: &str, id: u64, request: &Request) -> Response {
        match request.method {
            Method::Get => match self.db.raw().get(resource, id) {
                Some(doc) => Response::Ok(doc),
                None => Response::Error(format!("{resource}/{id} not found")),
            },
            Method::Patch => match &request.body {
                Some(Doc::Obj(fields)) => {
                    let patch: Vec<(&str, Doc)> =
                        fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                    match self.db.raw().patch(resource, id, &patch) {
                        Ok(()) => Response::NoContent,
                        Err(e) => Response::Error(e.to_string()),
                    }
                }
                _ => Response::Error("PATCH requires an object body".into()),
            },
            Method::Delete => match self.db.raw().delete(resource, id) {
                Ok(()) => Response::NoContent,
                Err(e) => Response::Error(e.to_string()),
            },
            Method::Post => Response::Error("POST not allowed on item".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn api_with_event() -> (RestApi, u64) {
        let db = SintelDb::in_memory();
        let run = db.add_signalrun(1, "S-1", "done");
        let ev = db.add_event(run, "S-1", 100, 200, 0.7);
        (RestApi::new(db), ev)
    }

    #[test]
    fn get_collection_and_item() {
        let (api, ev) = api_with_event();
        let Response::Ok(Doc::Arr(events)) = api.handle(&Request::get("/events")) else {
            panic!("expected list")
        };
        assert_eq!(events.len(), 1);
        let Response::Ok(doc) = api.handle(&Request::get(&format!("/events/{ev}"))) else {
            panic!("expected doc")
        };
        assert_eq!(doc.get("signal").unwrap().as_str(), Some("S-1"));
    }

    #[test]
    fn post_patch_delete_lifecycle() {
        let (api, _) = api_with_event();
        let Response::Created(id) = api.handle(&Request::post(
            "/comments",
            Doc::obj().with("event_id", 1i64).with("text", "odd spike"),
        )) else {
            panic!("expected created")
        };
        let resp = api.handle(&Request::patch(
            &format!("/comments/{id}"),
            Doc::obj().with("text", "resolved: maneuver"),
        ));
        assert_eq!(resp, Response::NoContent);
        let Response::Ok(doc) = api.handle(&Request::get(&format!("/comments/{id}"))) else {
            panic!()
        };
        assert_eq!(doc.get("text").unwrap().as_str(), Some("resolved: maneuver"));
        assert_eq!(api.handle(&Request::delete(&format!("/comments/{id}"))), Response::NoContent);
        assert!(matches!(
            api.handle(&Request::get(&format!("/comments/{id}"))),
            Response::Error(_)
        ));
    }

    #[test]
    fn bad_routes_and_bodies() {
        let (api, _) = api_with_event();
        assert!(matches!(api.handle(&Request::get("/nonsense")), Response::Error(_)));
        assert!(matches!(api.handle(&Request::get("/events/abc")), Response::Error(_)));
        assert!(matches!(
            api.handle(&Request { method: Method::Post, path: "/events".into(), body: None }),
            Response::Error(_)
        ));
        assert!(matches!(
            api.handle(&Request::delete("/events")),
            Response::Error(_)
        ));
        assert!(matches!(api.handle(&Request::get("/")), Response::Error(_)));
    }

    #[test]
    fn all_schema_resources_are_routable() {
        let (api, _) = api_with_event();
        for resource in RESOURCES {
            let resp = api.handle(&Request::get(&format!("/{resource}")));
            assert!(matches!(resp, Response::Ok(_)), "{resource}");
        }
    }
}

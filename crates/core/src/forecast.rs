//! Time-series forecasting — one of the sister tasks the Sintel
//! ecosystem supports beyond anomaly detection (paper §7: "Sintel is a
//! larger ecosystem that can perform many tasks, including time series
//! classification, regression, forecasting, and anomaly detection").
//!
//! [`Forecaster`] reuses the framework's modeling substrates (ARIMA,
//! Holt–Winters, and a seasonal-naive baseline) behind the same
//! fit-then-act interface as [`crate::Sintel`], and ships a backtest so
//! forecasts are evaluated the same disciplined way detections are.

use sintel_stats::{estimate_period, Arima, HoltWinters};
use sintel_timeseries::Signal;

use crate::{Result, SintelError};

/// Forecasting model selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForecastModel {
    /// ARIMA(p, d, q) via Hannan–Rissanen (default orders 5,0,1).
    Arima,
    /// Additive Holt–Winters (period auto-estimated).
    HoltWinters,
    /// Repeat the last observed season (baseline).
    SeasonalNaive,
}

impl ForecastModel {
    /// Parse from the names used by the CLI / examples.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "arima" => Some(Self::Arima),
            "holt_winters" => Some(Self::HoltWinters),
            "seasonal_naive" => Some(Self::SeasonalNaive),
            _ => None,
        }
    }
}

enum Fitted {
    Arima(Arima),
    HoltWinters(HoltWinters),
    SeasonalNaive {
        period: usize,
    },
}

/// A fit/forecast handle over one signal.
pub struct Forecaster {
    model: ForecastModel,
    fitted: Option<(Fitted, Vec<f64>, i64, i64)>, // (model, history, last ts, step)
}

impl Forecaster {
    /// Create for a model kind.
    pub fn new(model: ForecastModel) -> Self {
        Self { model, fitted: None }
    }

    /// Fit on a signal's history.
    pub fn fit(&mut self, signal: &Signal) -> Result<()> {
        let values = signal.values().to_vec();
        let period = estimate_period(&values, 4, values.len() / 3).unwrap_or(24);
        let fitted = match self.model {
            ForecastModel::Arima => Fitted::Arima(
                Arima::fit(&values, 5, 0, 1)
                    .map_err(|e| SintelError::Pipeline(e.to_string()))?,
            ),
            ForecastModel::HoltWinters => Fitted::HoltWinters(
                HoltWinters::new(0.3, 0.05, 0.25, period)
                    .map_err(|e| SintelError::Pipeline(e.to_string()))?,
            ),
            ForecastModel::SeasonalNaive => Fitted::SeasonalNaive { period },
        };
        let step = signal.median_step().max(1);
        let last_ts = signal
            .end()
            .ok_or_else(|| SintelError::Invalid("cannot forecast an empty signal".into()))?;
        self.fitted = Some((fitted, values, last_ts, step));
        Ok(())
    }

    /// Forecast `horizon` future samples; returns a signal whose
    /// timestamps continue the history's spacing.
    pub fn forecast(&self, horizon: usize) -> Result<Signal> {
        let (fitted, history, last_ts, step) = self
            .fitted
            .as_ref()
            .ok_or_else(|| SintelError::Invalid("forecaster is not fitted".into()))?;
        let values = match fitted {
            Fitted::Arima(m) => m
                .forecast(history, horizon)
                .map_err(|e| SintelError::Pipeline(e.to_string()))?,
            Fitted::HoltWinters(m) => m
                .forecast(history, horizon)
                .map_err(|e| SintelError::Pipeline(e.to_string()))?,
            Fitted::SeasonalNaive { period } => {
                if history.len() < *period {
                    return Err(SintelError::Invalid(format!(
                        "history shorter than the season ({period})"
                    )));
                }
                let season = &history[history.len() - period..];
                (0..horizon).map(|h| season[h % period]).collect()
            }
        };
        let timestamps: Vec<i64> =
            (1..=horizon as i64).map(|h| last_ts + h * step).collect();
        Signal::univariate("forecast", timestamps, values)
            .map_err(|e| SintelError::Invalid(e.to_string()))
    }

    /// Backtest: fit on all but the last `holdout` samples, forecast
    /// them, and report `(mae, smape)` against the truth.
    pub fn backtest(model: ForecastModel, signal: &Signal, holdout: usize) -> Result<(f64, f64)> {
        if holdout == 0 || signal.len() <= holdout + 8 {
            return Err(SintelError::Invalid(format!(
                "holdout {holdout} leaves too little history ({})",
                signal.len()
            )));
        }
        let (train, test) = signal.split(1.0 - holdout as f64 / signal.len() as f64)
            .map_err(|e| SintelError::Invalid(e.to_string()))?;
        let mut forecaster = Forecaster::new(model);
        forecaster.fit(&train)?;
        let fc = forecaster.forecast(test.len())?;
        Ok((
            sintel_metrics::mae(test.values(), fc.values()),
            sintel_metrics::smape(test.values(), fc.values()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_signal(n: usize) -> Signal {
        Signal::from_values(
            "s",
            (0..n)
                .map(|t| 10.0 + 3.0 * (std::f64::consts::TAU * t as f64 / 24.0).sin())
                .collect(),
        )
    }

    #[test]
    fn all_models_forecast_a_clean_season() {
        let signal = seasonal_signal(480);
        for model in
            [ForecastModel::Arima, ForecastModel::HoltWinters, ForecastModel::SeasonalNaive]
        {
            let mut f = Forecaster::new(model);
            f.fit(&signal).unwrap();
            let fc = f.forecast(48).unwrap();
            assert_eq!(fc.len(), 48, "{model:?}");
            // Timestamps continue with unit spacing.
            assert_eq!(fc.timestamps()[0], 480);
            assert_eq!(fc.timestamps()[47], 527);
            // Values stay within the signal's envelope.
            assert!(
                fc.values().iter().all(|v| (5.0..15.0).contains(v)),
                "{model:?}: {:?}",
                &fc.values()[..4]
            );
        }
    }

    #[test]
    fn backtest_ranks_models_sanely() {
        let signal = seasonal_signal(600);
        // On a perfectly periodic signal the seasonal-naive baseline is
        // near-unbeatable; every model should still be accurate.
        for model in
            [ForecastModel::HoltWinters, ForecastModel::SeasonalNaive, ForecastModel::Arima]
        {
            let (mae, smape) = Forecaster::backtest(model, &signal, 48).unwrap();
            assert!(mae < 1.5, "{model:?}: mae {mae}");
            assert!(smape < 0.2, "{model:?}: smape {smape}");
        }
    }

    #[test]
    fn unfitted_and_invalid_inputs() {
        let f = Forecaster::new(ForecastModel::Arima);
        assert!(f.forecast(10).is_err());
        let tiny = seasonal_signal(20);
        assert!(Forecaster::backtest(ForecastModel::Arima, &tiny, 15).is_err());
        assert_eq!(ForecastModel::parse("arima"), Some(ForecastModel::Arima));
        assert_eq!(ForecastModel::parse("prophet"), None);
    }
}

//! Byte-exact heap tracking for the computational-performance benchmark
//! (Figure 7a's memory column).
//!
//! Benchmark binaries install [`TrackingAllocator`] as their global
//! allocator; the framework then reads [`current_bytes`] /
//! [`peak_bytes`] around pipeline runs. When the tracker is not
//! installed the counters simply stay at zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A `GlobalAlloc` wrapper around the system allocator that maintains
/// current/peak live-byte counters.
pub struct TrackingAllocator;

// SAFETY: delegates directly to `System`, only adding atomic counter
// updates around the calls.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                let cur =
                    CURRENT.fetch_add(new_size - layout.size(), Ordering::Relaxed)
                        + (new_size - layout.size());
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Live heap bytes right now (0 unless the tracker is installed).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current level (call before the region of
/// interest).
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracker is not installed in unit tests (no #[global_allocator]
    // here), so the API must behave gracefully at zero.
    #[test]
    fn counters_without_installation() {
        reset_peak();
        assert_eq!(current_bytes(), 0);
        assert_eq!(peak_bytes(), 0);
        let _v: Vec<u8> = vec![0; 1024];
        assert_eq!(current_bytes(), 0, "not installed -> no counting");
    }
}

//! AutoML bridge: template hyperparameter spaces → the GP tuner
//! (paper §3.3, Figure 5).
//!
//! Two settings, as in the paper:
//!
//! * **Supervised** — ground-truth anomalies exist; the objective is the
//!   detection F1 (overlapping segment) of the *whole* pipeline.
//! * **Unsupervised** — no labels; the objective scores how well the
//!   modeling sub-pipeline reproduces the signal (negative mean error),
//!   so only the signal-fit is optimised.

use sintel_metrics::overlapping_segment;
use sintel_obs::FieldValue;
use sintel_pipeline::{ParamId, Template};
use sintel_primitives::{HyperRange, HyperSpec, HyperValue};
use sintel_timeseries::{Interval, Signal};
use sintel_tuner::{DimSpec, DimValue, GpTuner, Space, Tuner};

use crate::policy::{run_guarded, GuardedResult, RunPolicy};
use crate::{Result, SintelError};

/// Log target of the tuner bridge.
const TARGET: &str = "sintel::tune";

/// Candidate λs evaluated concurrently per GP round. Fixed — never
/// derived from the thread count — so proposals, the GP's update
/// sequence and therefore the whole search trajectory are identical
/// at every `SINTEL_THREADS` value.
const TRIAL_BATCH: usize = 4;

/// Cost-gate threshold: a candidate whose statically estimated flops
/// exceed this multiple of the default configuration's estimate is
/// rejected without execution. Generous on purpose — the estimates are
/// order-of-magnitude bounds, and legitimate search moves (more epochs,
/// wider layers) routinely cost 10x the default; only configurations
/// that could eat the whole trial budget by themselves are cut.
const COST_EXPLOSION_FACTOR: f64 = 64.0;

/// Which objective drives the search (Figure 5's two conditions).
#[derive(Debug, Clone)]
pub enum TuneSetting {
    /// Maximise detection F1 against known anomalies.
    Supervised {
        /// Ground-truth anomalies of the tuning signal.
        ground_truth: Vec<Interval>,
    },
    /// Maximise signal reproduction (negative mean error).
    Unsupervised,
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Score of the default configuration (evaluated first).
    pub default_score: f64,
    /// Best score found.
    pub best_score: f64,
    /// The winning configuration λ*.
    pub best_lambda: Vec<(ParamId, HyperValue)>,
    /// Every `(score)` in evaluation order (for convergence plots).
    pub history: Vec<f64>,
    /// Names of the parameters that changed from their defaults in λ*.
    pub changed_params: Vec<ParamId>,
    /// Trials skipped because the static analyzer rejected the candidate
    /// λ before execution (scored `NEG_INFINITY`, counted in `history`).
    pub rejected_trials: usize,
}

/// Convert a primitive hyperparameter spec into a tuner dimension.
fn to_dim(spec: &HyperSpec) -> DimSpec {
    match &spec.range {
        HyperRange::Int { lo, hi } => DimSpec::Int { lo: *lo, hi: *hi },
        HyperRange::Float { lo, hi, log } => DimSpec::Float { lo: *lo, hi: *hi, log: *log },
        HyperRange::Choice(opts) => DimSpec::Choice(opts.len()),
        HyperRange::Flag => DimSpec::Flag,
    }
}

/// Convert a decoded tuner value back into a hyperparameter value.
fn to_hyper(spec: &HyperSpec, value: &DimValue) -> HyperValue {
    match (value, &spec.range) {
        (DimValue::F(v), _) => HyperValue::Float(*v),
        (DimValue::I(v), _) => HyperValue::Int(*v),
        (DimValue::B(v), _) => HyperValue::Flag(*v),
        (DimValue::Idx(i), HyperRange::Choice(opts)) => {
            HyperValue::Text(opts[(*i).min(opts.len() - 1)].clone())
        }
        (DimValue::Idx(i), _) => HyperValue::Int(*i as i64),
    }
}

/// Evaluate one configuration of the template against the objective.
fn evaluate_lambda(
    template: &Template,
    lambda: &[(ParamId, HyperValue)],
    data: &Signal,
    setting: &TuneSetting,
) -> f64 {
    let Ok(mut pipeline) = template.build(lambda) else {
        return f64::NEG_INFINITY;
    };
    if pipeline.fit(data).is_err() {
        return f64::NEG_INFINITY;
    }
    match setting {
        TuneSetting::Supervised { ground_truth } => match pipeline.detect(data) {
            Ok(anomalies) => {
                let pred: Vec<Interval> = anomalies.iter().map(|a| a.interval).collect();
                overlapping_segment(ground_truth, &pred).scores().f1
            }
            Err(_) => f64::NEG_INFINITY,
        },
        TuneSetting::Unsupervised => match pipeline.errors(data) {
            // Smaller mean error = the expected signal matches better.
            Ok((errors, _)) => -sintel_common::mean(&errors),
            Err(_) => f64::NEG_INFINITY,
        },
    }
}

/// Evaluate one configuration on a watchdog thread: a trial that
/// panics or hangs scores `NEG_INFINITY` instead of killing (or
/// stalling) the whole search.
fn evaluate_lambda_guarded(
    template: &Template,
    lambda: &[(ParamId, HyperValue)],
    data: &Signal,
    setting: &TuneSetting,
    policy: &RunPolicy,
) -> f64 {
    let template = template.clone();
    let lambda = lambda.to_vec();
    let data = data.clone();
    let setting = setting.clone();
    match run_guarded(policy.timeout, move || {
        evaluate_lambda(&template, &lambda, &data, &setting)
    }) {
        GuardedResult::Done(score) => score,
        GuardedResult::Panicked(_) | GuardedResult::TimedOut => f64::NEG_INFINITY,
    }
}

/// Search the template's joint tunable space with the GP tuner.
///
/// The default configuration is always evaluated first (it is both the
/// warm-start observation and the baseline `default_score`); the best
/// configuration over `budget` further evaluations wins. Trials run
/// one attempt each under the default run budget — a failed trial is
/// informative, not worth repeating.
pub fn tune_template(
    template: &Template,
    data: &Signal,
    setting: &TuneSetting,
    budget: usize,
) -> Result<TuneReport> {
    tune_template_with_policy(
        template,
        data,
        setting,
        budget,
        &RunPolicy::single_attempt(RunPolicy::default().timeout),
    )
}

/// [`tune_template`] with an explicit per-trial execution budget.
pub fn tune_template_with_policy(
    template: &Template,
    data: &Signal,
    setting: &TuneSetting,
    budget: usize,
    policy: &RunPolicy,
) -> Result<TuneReport> {
    let space_specs = template.hyperparameter_space()?;
    if space_specs.is_empty() {
        return Err(SintelError::Tuning("template has no tunable hyperparameters".into()));
    }
    let space = Space::new(space_specs.iter().map(|(_, s)| to_dim(s)).collect());
    let decode = |unit: &[f64]| -> Vec<(ParamId, HyperValue)> {
        space
            .decode(unit)
            .iter()
            .zip(&space_specs)
            .map(|(dv, (pid, spec))| (pid.clone(), to_hyper(spec, dv)))
            .collect()
    };

    let mut rejected_trials = 0usize;

    let input_len = data.len();
    let default_cost = template.estimated_cost(input_len);

    // Pre-screen: a statically rejected configuration is never executed —
    // it scores NEG_INFINITY as a FailureKind::Rejected trial, not a crash.
    // Two gates, both free of pipeline execution:
    //   1. the analyzer's coded diagnostics, with the dataset length as
    //      the input bound so statically-empty outputs (SA007) reject;
    //   2. the static cost model — a candidate estimated at more than
    //      COST_EXPLOSION_FACTOR x the default's flops cannot pay for
    //      itself within the trial budget and is rejected unpriced.
    let mut screen = |lambda: &[(ParamId, HyperValue)], trial: u64| -> bool {
        let report = template.analyze_for_input_len(lambda, Some(input_len));
        let verdict = if report.has_errors() {
            Some(report.summary())
        } else {
            match (default_cost, template.estimated_cost_with(lambda, input_len)) {
                (Some(default), Some(candidate))
                    if candidate.flops > COST_EXPLOSION_FACTOR * default.flops.max(1.0) =>
                {
                    Some(format!(
                        "cost-explosive: ~{:.0}x the default configuration's estimated flops",
                        candidate.flops / default.flops.max(1.0)
                    ))
                }
                _ => None,
            }
        };
        let Some(diagnostics) = verdict else {
            return false;
        };
        rejected_trials += 1;
        sintel_obs::counter_add(
            &sintel_obs::labeled(
                "sintel_run_failures_total",
                &[("kind", crate::policy::FailureKind::Rejected.label())],
            ),
            1,
        );
        sintel_obs::counter_add("sintel_tune_rejected_trials_total", 1);
        sintel_obs::debug!(
            TARGET,
            "trial rejected by static analysis; recording penalty score",
            template = template.name.as_str(),
            trial = trial,
            diagnostics = diagnostics.as_str(),
        );
        true
    };

    // Baseline: default configuration.
    let default_score = if screen(&[], 0) {
        f64::NEG_INFINITY
    } else {
        let trial_span = sintel_obs::span_with(
            "tune.trial",
            &[
                ("template", FieldValue::from(template.name.as_str())),
                ("trial", FieldValue::from(0u64)),
            ],
        );
        let score = evaluate_lambda_guarded(template, &[], data, setting, policy);
        let elapsed = trial_span.close();
        sintel_obs::counter_add("sintel_tune_trials_total", 1);
        sintel_obs::observe_duration("sintel_tune_trial_seconds", elapsed);
        score
    };

    let mut tuner = GpTuner::new(space.clone(), 0xA1);
    let mut history = vec![default_score];
    let mut best_score = default_score;
    let mut best_lambda: Vec<(ParamId, HyperValue)> = Vec::new();

    // Trial spans open on worker threads; capture the caller's span so
    // they attach to it instead of appearing as per-worker roots.
    let parent_span = sintel_obs::current_span_id();

    let mut trial_no = 0usize;
    while trial_no < budget {
        let batch_size = (budget - trial_no).min(TRIAL_BATCH);
        // Propose the whole batch before evaluating any of it: each
        // proposal draws on the RNG and the history recorded so far,
        // both of which are independent of the thread count.
        let mut batch = Vec::with_capacity(batch_size);
        for b in 0..batch_size {
            let unit = tuner.propose()?;
            let lambda = decode(&unit);
            let screened = screen(&lambda, (trial_no + b) as u64 + 1);
            batch.push((unit, lambda, screened));
        }
        // Evaluate the surviving candidates concurrently. Each trial is
        // pure (watchdog-guarded pipeline run); spans and commutative
        // counters are the only side effects.
        let scores = sintel_common::par_map(batch.len(), |b| {
            // In range: `b` comes from `0..batch.len()`.
            #[allow(clippy::indexing_slicing)]
            let (_, lambda, screened) = &batch[b];
            if *screened {
                return None;
            }
            let trial_span = sintel_obs::span_with_parent(
                "tune.trial",
                &[
                    ("template", FieldValue::from(template.name.as_str())),
                    ("trial", FieldValue::from((trial_no + b) as u64 + 1)),
                ],
                parent_span,
            );
            let score = evaluate_lambda_guarded(template, lambda, data, setting, policy);
            let elapsed = trial_span.close();
            sintel_obs::counter_add("sintel_tune_trials_total", 1);
            sintel_obs::observe_duration("sintel_tune_trial_seconds", elapsed);
            Some(score)
        });
        // Record in proposal order — the GP's update sequence is fixed
        // regardless of which worker finished first.
        for (b, ((unit, lambda, _), evaluated)) in
            batch.into_iter().zip(scores).enumerate()
        {
            let Some(score) = evaluated else {
                history.push(f64::NEG_INFINITY);
                // Same strong penalty as a crashed trial: the GP steers
                // away from the rejected region without destroying its
                // numerics.
                tuner.record(unit, -1e6);
                continue;
            };
            if !score.is_finite() {
                sintel_obs::counter_add("sintel_tune_failed_trials_total", 1);
                sintel_obs::debug!(
                    TARGET,
                    "trial failed; recording penalty score",
                    template = template.name.as_str(),
                    trial = (trial_no + b) as u64 + 1,
                );
            }
            history.push(score);
            // NEG_INFINITY (failed builds) recorded as a strong penalty
            // so the GP steers away without destroying its numerics.
            tuner.record(unit, if score.is_finite() { score } else { -1e6 });
            if score > best_score {
                best_score = score;
                best_lambda = lambda;
            }
        }
        trial_no += batch_size;
    }

    let changed_params: Vec<ParamId> =
        best_lambda.iter().map(|(pid, _)| pid.clone()).collect();
    sintel_obs::info!(
        TARGET,
        "search finished",
        template = template.name.as_str(),
        trials = history.len(),
        default_score = default_score,
        best_score = best_score,
        changed_params = changed_params.len(),
        rejected_trials = rejected_trials,
    );
    Ok(TuneReport {
        default_score,
        best_score,
        best_lambda,
        history,
        changed_params,
        rejected_trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintel_pipeline::StepSpec;

    fn arima_template() -> Template {
        Template {
            name: "tune_arima".into(),
            steps: vec![
                StepSpec::plain("time_segments_aggregate"),
                StepSpec::plain("SimpleImputer"),
                StepSpec::plain("MinMaxScaler"),
                StepSpec::with("arima", &[("q", HyperValue::Int(0))]),
                StepSpec::plain("regression_errors"),
                StepSpec::plain("find_anomalies"),
            ],
        }
    }

    fn spiky_signal() -> (Signal, Vec<Interval>) {
        let n = 500;
        let mut vals: Vec<f64> =
            (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 40.0).sin()).collect();
        for v in &mut vals[250..260] {
            *v += 5.0;
        }
        (Signal::from_values("tune", vals), vec![Interval::new(250, 259).unwrap()])
    }

    #[test]
    fn supervised_tuning_never_worse_than_default() {
        let (signal, truth) = spiky_signal();
        let report = tune_template(
            &arima_template(),
            &signal,
            &TuneSetting::Supervised { ground_truth: truth },
            8,
        )
        .unwrap();
        assert!(report.best_score >= report.default_score);
        assert_eq!(report.history.len(), 9);
        assert!(report.best_score > 0.0, "{report:?}");
    }

    #[test]
    fn unsupervised_tuning_optimises_signal_fit() {
        let (signal, _) = spiky_signal();
        let report =
            tune_template(&arima_template(), &signal, &TuneSetting::Unsupervised, 6).unwrap();
        assert!(report.best_score >= report.default_score);
        // Unsupervised objective is a negative error: finite and <= 0.
        assert!(report.best_score <= 0.0 && report.best_score.is_finite());
    }

    #[test]
    fn dim_roundtrip_covers_all_kinds() {
        let specs = [
            HyperSpec::int("a", 1, 5, 2),
            HyperSpec::float("b", 0.0, 1.0, 0.5),
            HyperSpec::log_float("c", 1e-4, 1e-1, 1e-2),
            HyperSpec::choice("d", &["x", "y", "z"], "x"),
        ];
        let space = Space::new(specs.iter().map(to_dim).collect());
        let decoded = space.decode(&[0.5, 0.5, 0.5, 0.9]);
        assert_eq!(to_hyper(&specs[0], &decoded[0]), HyperValue::Int(3));
        assert!(matches!(to_hyper(&specs[1], &decoded[1]), HyperValue::Float(_)));
        assert!(matches!(to_hyper(&specs[2], &decoded[2]), HyperValue::Float(_)));
        assert_eq!(to_hyper(&specs[3], &decoded[3]), HyperValue::Text("z".into()));
    }

    #[test]
    fn crashing_trials_do_not_kill_the_search() {
        // Every trial of this template panics inside `fit`; the search
        // must record NEG_INFINITY scores and run to completion.
        let template = Template {
            name: "always_panics".into(),
            steps: vec![
                StepSpec::plain("time_segments_aggregate"),
                StepSpec::plain("SimpleImputer"),
                StepSpec::plain("MinMaxScaler"),
                StepSpec::plain("faulty_panic"),
            ],
        };
        let (signal, _) = spiky_signal();
        let report =
            tune_template(&template, &signal, &TuneSetting::Unsupervised, 3).unwrap();
        assert_eq!(report.history.len(), 4);
        assert!(report.history.iter().all(|s| *s == f64::NEG_INFINITY), "{report:?}");
    }

    #[test]
    fn statically_doomed_trials_are_rejected_not_executed() {
        // targets=false is a fixed override the tuner can never undo, and
        // lstm_regressor requires targets (SA005): every candidate λ —
        // including the default — is rejected by the pre-screen without a
        // single pipeline execution.
        let template = Template {
            name: "doomed".into(),
            steps: vec![
                StepSpec::plain("time_segments_aggregate"),
                StepSpec::plain("SimpleImputer"),
                StepSpec::plain("MinMaxScaler"),
                StepSpec::with(
                    "rolling_window_sequences",
                    &[("targets", HyperValue::Flag(false))],
                ),
                StepSpec::plain("lstm_regressor"),
                StepSpec::plain("regression_errors"),
                StepSpec::plain("find_anomalies"),
            ],
        };
        let (signal, _) = spiky_signal();
        let report =
            tune_template(&template, &signal, &TuneSetting::Unsupervised, 3).unwrap();
        assert_eq!(report.rejected_trials, 4, "default + 3 proposals");
        assert_eq!(report.history.len(), 4);
        assert!(report.history.iter().all(|s| *s == f64::NEG_INFINITY), "{report:?}");
    }

    #[test]
    fn cost_explosive_candidate_is_rejected_without_executing() {
        // epochs=200, hidden=64, window_size=500 prices out at far more
        // than 64x the default LSTM chain — the cost gate must cut it
        // before `evaluate_lambda_guarded` ever runs.
        let template = Template {
            name: "lstm_chain".into(),
            steps: vec![
                StepSpec::plain("time_segments_aggregate"),
                StepSpec::plain("SimpleImputer"),
                StepSpec::plain("MinMaxScaler"),
                StepSpec::plain("rolling_window_sequences"),
                StepSpec::plain("lstm_regressor"),
                StepSpec::plain("regression_errors"),
                StepSpec::plain("find_anomalies"),
            ],
        };
        let (signal, _) = spiky_signal();
        let n = signal.len();
        let pid = |step: usize, name: &str| ParamId { step, name: name.to_string() };
        let explosive: Vec<(ParamId, HyperValue)> = vec![
            (pid(3, "window_size"), HyperValue::Int(400)),
            (pid(4, "epochs"), HyperValue::Int(200)),
            (pid(4, "hidden"), HyperValue::Int(64)),
        ];
        let default = template.estimated_cost(n).expect("default priced");
        let candidate = template.estimated_cost_with(&explosive, n).expect("candidate priced");
        assert!(
            candidate.flops > COST_EXPLOSION_FACTOR * default.flops,
            "fixture must be explosive: {} vs {}",
            candidate.flops,
            default.flops
        );
        // Drive the gate itself (not the full search, which may or may
        // not propose this corner): the default survives, the explosive
        // candidate is a Rejected trial.
        let input_len = n;
        let default_cost = template.estimated_cost(input_len);
        let screen = |lambda: &[(ParamId, HyperValue)]| -> bool {
            let report = template.analyze_for_input_len(lambda, Some(input_len));
            report.has_errors()
                || matches!(
                    (default_cost, template.estimated_cost_with(lambda, input_len)),
                    (Some(d), Some(c)) if c.flops > COST_EXPLOSION_FACTOR * d.flops.max(1.0)
                )
        };
        assert!(!screen(&[]), "default configuration must pass the gate");
        assert!(screen(&explosive), "explosive candidate must be rejected");
    }

    #[test]
    fn shape_doomed_candidate_is_rejected_for_the_dataset_length() {
        // window_size larger than the dataset itself: the shape pass
        // proves the output statically empty (SA007) for this input and
        // the tuner rejects the trial without executing it.
        let template = Template {
            name: "shape_doomed".into(),
            steps: vec![
                StepSpec::plain("time_segments_aggregate"),
                StepSpec::plain("SimpleImputer"),
                StepSpec::plain("MinMaxScaler"),
                StepSpec::with("rolling_window_sequences", &[("window_size", HyperValue::Int(5_000))]),
                StepSpec::plain("lstm_regressor"),
                StepSpec::plain("regression_errors"),
                StepSpec::plain("find_anomalies"),
            ],
        };
        let (signal, _) = spiky_signal();
        let report =
            tune_template(&template, &signal, &TuneSetting::Unsupervised, 3).unwrap();
        assert_eq!(report.rejected_trials, 4, "default + 3 proposals: {report:?}");
        assert!(report.history.iter().all(|s| *s == f64::NEG_INFINITY), "{report:?}");
    }

    #[test]
    fn valid_searches_report_zero_rejections() {
        let (signal, _) = spiky_signal();
        let report =
            tune_template(&arima_template(), &signal, &TuneSetting::Unsupervised, 3).unwrap();
        assert_eq!(report.rejected_trials, 0);
    }

    #[test]
    fn empty_space_rejected() {
        // A template whose every hyperparameter is overridden has nothing
        // to tune.
        let template = Template {
            name: "fixed".into(),
            steps: vec![StepSpec::with(
                "fixed_threshold",
                &[("k", HyperValue::Float(3.0))],
            )],
        };
        let (signal, _) = spiky_signal();
        assert!(matches!(
            tune_template(&template, &signal, &TuneSetting::Unsupervised, 3),
            Err(SintelError::Tuning(_))
        ));
    }
}

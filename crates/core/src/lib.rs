#![warn(missing_docs)]

//! # sintel — the framework core
//!
//! The main entry point of the Sintel reproduction (paper §3.1):
//!
//! * [`Sintel`] — the coherent end-to-end API of Figure 4a:
//!   `Sintel::new("lstm_dynamic_threshold")`, `fit`, `detect`,
//!   `evaluate`, plus the AutoML entry point `tune` (Figure 4b) in both
//!   supervised and unsupervised settings (Figure 5);
//! * [`benchmark`] — the standardized benchmarking suite of §3.4
//!   (Figure 4c): quality (overlapping / weighted segment scores per
//!   pipeline per dataset) and computational performance (training time,
//!   pipeline latency, memory);
//! * [`tune`] — the bridge between pipeline templates' joint
//!   hyperparameter spaces and the GP tuner;
//! * [`policy`] — the fault-isolation layer ([`RunPolicy`], watchdog
//!   execution, retries, the typed failure taxonomy) that every runner
//!   above routes pipeline executions through;
//! * [`api`] — a RESTful-style request/response layer over the
//!   knowledge base, standing in for the `sintel-api` web service;
//! * [`features`] — the Table 1 capability matrix;
//! * [`alloc`] — the byte-exact allocation tracker the benchmark
//!   binaries install to measure peak memory;
//! * [`forecast`] — the forecasting sister task (paper §7), reusing the
//!   ARIMA / Holt–Winters substrates behind the same fit-then-act API.

pub mod alloc;
pub mod api;
pub mod benchmark;
pub mod features;
pub mod forecast;
pub mod sintel;
pub mod tune;

// The fault-isolation policy layer moved down into `sintel-pipeline`
// (the serving tier reuses it without depending on the framework core);
// `sintel::policy` remains the canonical path for core callers.
pub use sintel_pipeline::policy;

pub use crate::sintel::Sintel;
pub use benchmark::{
    benchmark, benchmark_report, benchmark_report_with_db, benchmark_with_db,
    render_perf_table, render_table, BenchmarkConfig, BenchmarkReport, BenchmarkRow,
    MetricKind,
};
pub use policy::{FailureBreakdown, FailureKind, RunPolicy};
pub use tune::{TuneReport, TuneSetting};

/// Errors produced by the framework core.
#[derive(Debug, Clone, PartialEq)]
pub enum SintelError {
    /// Pipeline-layer failure.
    Pipeline(String),
    /// Tuning failure.
    Tuning(String),
    /// Knowledge-base failure.
    Store(String),
    /// Invalid user input.
    Invalid(String),
}

impl std::fmt::Display for SintelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SintelError::Pipeline(m) => write!(f, "pipeline: {m}"),
            SintelError::Tuning(m) => write!(f, "tuning: {m}"),
            SintelError::Store(m) => write!(f, "store: {m}"),
            SintelError::Invalid(m) => write!(f, "invalid input: {m}"),
        }
    }
}

impl std::error::Error for SintelError {}

impl From<sintel_pipeline::PipelineError> for SintelError {
    fn from(e: sintel_pipeline::PipelineError) -> Self {
        SintelError::Pipeline(e.to_string())
    }
}

impl From<sintel_store::StoreError> for SintelError {
    fn from(e: sintel_store::StoreError) -> Self {
        SintelError::Store(e.to_string())
    }
}

impl From<sintel_tuner::TunerError> for SintelError {
    fn from(e: sintel_tuner::TunerError) -> Self {
        SintelError::Tuning(e.to_string())
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SintelError>;

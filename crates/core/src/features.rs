//! The system capability matrix of Table 1.
//!
//! The table compares ten anomaly detection systems along user types,
//! engine coverage, modularity, components, APIs and HIL support. The
//! entries for the *other* systems are the paper's published assessment
//! (static data); Sintel's own column is **computed from this
//! repository** — each capability maps to the module that provides it —
//! so the table stays honest as the codebase evolves.

/// The capabilities compared in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Usable by end users who just want detections.
    EndUser,
    /// Usable by system builders adding their own workflows.
    SystemBuilder,
    /// Usable by ML researchers creating new pipelines.
    MlResearcher,
    /// Has a preprocessing engine.
    Preprocessing,
    /// Has a modeling engine.
    Modeling,
    /// Has a postprocessing engine.
    Postprocessing,
    /// Pipelines can reuse primitives.
    Modular,
    /// Custom evaluation mechanisms.
    Evaluation,
    /// Out-of-the-box benchmarking framework.
    Benchmark,
    /// Integrated results database.
    Database,
    /// Language-specific API.
    LanguageApi,
    /// RESTful API.
    RestApi,
    /// Human-in-the-loop component.
    HumanInTheLoop,
}

/// All capabilities in Table 1's row order.
pub const ALL_CAPABILITIES: &[Capability] = &[
    Capability::EndUser,
    Capability::SystemBuilder,
    Capability::MlResearcher,
    Capability::Preprocessing,
    Capability::Modeling,
    Capability::Postprocessing,
    Capability::Modular,
    Capability::Evaluation,
    Capability::Benchmark,
    Capability::Database,
    Capability::LanguageApi,
    Capability::RestApi,
    Capability::HumanInTheLoop,
];

impl Capability {
    /// Display label (Table 1 row name).
    pub fn label(&self) -> &'static str {
        match self {
            Capability::EndUser => "End User",
            Capability::SystemBuilder => "System Builder",
            Capability::MlResearcher => "ML Researcher",
            Capability::Preprocessing => "Preprocessing",
            Capability::Modeling => "Modeling",
            Capability::Postprocessing => "Postprocessing",
            Capability::Modular => "Modular",
            Capability::Evaluation => "Evaluation",
            Capability::Benchmark => "Benchmark",
            Capability::Database => "Database",
            Capability::LanguageApi => "lang. specific API",
            Capability::RestApi => "RESTful API",
            Capability::HumanInTheLoop => "HIL",
        }
    }
}

/// One system's column.
#[derive(Debug, Clone)]
pub struct SystemFeatures {
    /// System name.
    pub name: &'static str,
    /// The capabilities it has.
    pub capabilities: Vec<Capability>,
}

impl SystemFeatures {
    /// Whether the system has a capability.
    pub fn has(&self, c: Capability) -> bool {
        self.capabilities.contains(&c)
    }
}

/// Sintel's column, derived from what this repository actually provides.
pub fn sintel_features() -> SystemFeatures {
    use Capability::*;
    let mut capabilities = vec![
        // fit/detect one-liners (crate::Sintel)
        EndUser,
        // custom templates (sintel_pipeline::Template)
        SystemBuilder,
        LanguageApi,
        // evaluation metrics (sintel-metrics)
        Evaluation,
        // benchmark suite (crate::benchmark)
        Benchmark,
        // knowledge base (sintel-store)
        Database,
        // REST layer (crate::api)
        RestApi,
        // annotations + feedback (sintel-hil)
        HumanInTheLoop,
    ];
    // New primitives slot into existing pipelines: the registry proves
    // primitive-level modularity, and covering all three engines proves
    // the engine split.
    let prims = sintel_primitives::available_primitives();
    if prims.len() > sintel_pipeline::hub::available_pipelines().len() {
        capabilities.push(Modular);
        capabilities.push(MlResearcher);
    }
    let engines: std::collections::HashSet<_> = prims
        .iter()
        .filter_map(|n| sintel_primitives::build_primitive(n).ok())
        .map(|p| p.meta().engine)
        .collect();
    if engines.len() == 3 {
        capabilities.extend([Preprocessing, Modeling, Postprocessing]);
    }
    SystemFeatures { name: "Sintel", capabilities }
}

/// The full Table 1 matrix (published assessments + computed Sintel).
pub fn feature_matrix() -> Vec<SystemFeatures> {
    use Capability::*;
    let mut systems = vec![
        SystemFeatures {
            name: "MS Azure",
            capabilities: vec![EndUser, SystemBuilder, Modeling, LanguageApi, RestApi],
        },
        SystemFeatures {
            name: "ADTK",
            capabilities: vec![
                EndUser, Preprocessing, Modeling, Postprocessing, Modular, Evaluation,
                LanguageApi,
            ],
        },
        SystemFeatures {
            name: "Luminaire",
            capabilities: vec![EndUser, Preprocessing, Modeling, Modular, LanguageApi],
        },
        SystemFeatures {
            name: "TODS",
            capabilities: vec![
                EndUser, Preprocessing, Modeling, Postprocessing, Modular, Benchmark,
                LanguageApi,
            ],
        },
        SystemFeatures {
            name: "Telemanom",
            capabilities: vec![EndUser, Modeling, Evaluation, LanguageApi],
        },
        SystemFeatures {
            name: "NAB",
            capabilities: vec![
                EndUser, MlResearcher, Modeling, Postprocessing, Benchmark, Database,
                LanguageApi,
            ],
        },
        SystemFeatures {
            name: "EGADS",
            capabilities: vec![EndUser, Modeling, Postprocessing, LanguageApi],
        },
        SystemFeatures {
            name: "Stumpy",
            capabilities: vec![EndUser, Preprocessing, Postprocessing, Modular, LanguageApi],
        },
        SystemFeatures {
            name: "GluonTS",
            capabilities: vec![
                MlResearcher, Preprocessing, Modeling, Modular, Benchmark, LanguageApi,
            ],
        },
    ];
    systems.push(sintel_features());
    systems
}

/// Render the matrix as a Table 1-style text table.
pub fn render_table() -> String {
    let systems = feature_matrix();
    let mut out = String::new();
    out.push_str(&format!("{:<20}", "attribute"));
    for s in &systems {
        out.push_str(&format!("{:>10}", s.name));
    }
    out.push('\n');
    for &cap in ALL_CAPABILITIES {
        out.push_str(&format!("{:<20}", cap.label()));
        for s in &systems {
            out.push_str(&format!("{:>10}", if s.has(cap) { "Y" } else { "-" }));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sintel_column_is_complete() {
        // Table 1's headline: Sintel is the only system ticking every box.
        let sintel = sintel_features();
        for &cap in ALL_CAPABILITIES {
            assert!(sintel.has(cap), "Sintel missing {:?}", cap);
        }
    }

    #[test]
    fn no_other_system_is_complete() {
        for system in feature_matrix() {
            if system.name == "Sintel" {
                continue;
            }
            let count = ALL_CAPABILITIES.iter().filter(|&&c| system.has(c)).count();
            assert!(
                count < ALL_CAPABILITIES.len(),
                "{} should not be complete",
                system.name
            );
        }
    }

    #[test]
    fn matrix_matches_published_sample() {
        // Spot-check a few published entries.
        let matrix = feature_matrix();
        let get = |name: &str| matrix.iter().find(|s| s.name == name).unwrap();
        assert!(get("MS Azure").has(Capability::RestApi));
        assert!(!get("MS Azure").has(Capability::HumanInTheLoop));
        assert!(get("NAB").has(Capability::Benchmark));
        assert!(!get("Telemanom").has(Capability::Modular));
        assert!(get("GluonTS").has(Capability::MlResearcher));
        assert!(!get("Stumpy").has(Capability::Modeling));
    }

    #[test]
    fn render_contains_all_systems_and_rows() {
        let table = render_table();
        for s in feature_matrix() {
            assert!(table.contains(s.name), "{}", s.name);
        }
        assert!(table.contains("HIL"));
        assert_eq!(table.lines().count(), ALL_CAPABILITIES.len() + 1);
    }
}

//! The `Sintel` orchestrator — the user-facing API of Figure 4a.

use sintel_metrics::{overlapping_segment, weighted_segment, Scores};
use sintel_obs::FieldValue;
use sintel_pipeline::{hub, ParamId, Pipeline, PipelineProfile, Template};
use sintel_primitives::HyperValue;
use sintel_store::SintelDb;
use sintel_timeseries::{Interval, ScoredInterval, Signal};

use crate::benchmark::MetricKind;
use crate::policy::{
    classify_pipeline_error, run_guarded, run_with_policy, Failure, FailureKind, GuardedResult,
    RunPolicy,
};
use crate::tune::{self, TuneReport, TuneSetting};
use crate::{Result, SintelError};

/// The end-to-end framework handle.
///
/// ```
/// use sintel::Sintel;
/// use sintel_datasets::load_signal;
///
/// let train = load_signal("S-2-train").unwrap();
/// let new_data = load_signal("S-2-new").unwrap();
///
/// let mut sintel = Sintel::new("arima").unwrap();
/// sintel.fit(&train.signal).unwrap();
/// let anomalies = sintel.detect(&new_data.signal).unwrap();
/// assert!(!anomalies.is_empty());
/// ```
pub struct Sintel {
    template: Template,
    pipeline: Pipeline,
    /// Hyperparameter configuration the pipeline is rebuilt with
    /// (empty = defaults; replaced by `tune`).
    lambda: Vec<(ParamId, HyperValue)>,
    policy: RunPolicy,
    db: Option<SintelDb>,
    signalrun_counter: u64,
}

impl Sintel {
    /// Create from a hub pipeline name (Figure 4a:
    /// `Sintel(pipeline="lstm_dynamic_threshold")`).
    pub fn new(pipeline: &str) -> Result<Self> {
        let template = hub::template_by_name(pipeline)?;
        let pipeline = template.build_default()?;
        Ok(Self {
            template,
            pipeline,
            lambda: Vec::new(),
            policy: RunPolicy::default(),
            db: None,
            signalrun_counter: 0,
        })
    }

    /// Create from a custom template (the "system builder" path).
    pub fn from_template(template: Template) -> Result<Self> {
        let pipeline = template.build_default()?;
        Ok(Self {
            template,
            pipeline,
            lambda: Vec::new(),
            policy: RunPolicy::default(),
            db: None,
            signalrun_counter: 0,
        })
    }

    /// Attach a knowledge base: every subsequent detection run persists
    /// its events (§3.5).
    pub fn with_db(mut self, db: SintelDb) -> Self {
        self.db = Some(db);
        self
    }

    /// Override the execution policy guarding `fit`/`detect` (watchdog
    /// timeout, retries, backoff).
    pub fn with_policy(mut self, policy: RunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active execution policy.
    pub fn policy(&self) -> &RunPolicy {
        &self.policy
    }

    /// The active pipeline's name.
    pub fn pipeline_name(&self) -> &str {
        self.pipeline.name()
    }

    /// Borrow the attached knowledge base, if any.
    pub fn db(&self) -> Option<&SintelDb> {
        self.db.as_ref()
    }

    /// Profiling data of the last fit/detect run.
    pub fn profile(&self) -> &PipelineProfile {
        self.pipeline.profile()
    }

    /// Train the pipeline (`sintel.fit(train_data)`).
    ///
    /// Runs under the fault-isolation layer: each attempt builds a
    /// fresh pipeline (so a poisoned half-fitted state never survives a
    /// retry) on a watchdog thread; panics are contained and a fit that
    /// exceeds [`RunPolicy::timeout`] is abandoned as an error.
    pub fn fit(&mut self, data: &Signal) -> Result<()> {
        let template = self.template.clone();
        let lambda = self.lambda.clone();
        let data = data.clone();
        let attempt = move || {
            // On the watchdog thread, so the pipeline spans nest inside.
            let _span = sintel_obs::span_with(
                "sintel.fit",
                &[
                    ("pipeline", FieldValue::from(template.name.as_str())),
                    ("signal", FieldValue::from(data.name())),
                ],
            );
            let mut pipeline = template
                .build(&lambda)
                .map_err(|e| Failure::new(FailureKind::Build, e.to_string()))?;
            pipeline
                .fit(&data)
                .map_err(|e| Failure::new(classify_pipeline_error(&e), e.to_string()))?;
            Ok(pipeline)
        };
        let (result, _attempts) = run_with_policy(&self.policy, attempt);
        match result {
            Ok(pipeline) => {
                self.pipeline = pipeline;
                Ok(())
            }
            Err(failure) => Err(SintelError::Pipeline(failure.to_string())),
        }
    }

    /// Detect anomalies (`sintel.detect(new_data)`), persisting events to
    /// the knowledge base when attached.
    ///
    /// Guarded by the watchdog: a panicking or hanging detection
    /// returns an error instead of taking the caller down. After such a
    /// failure the orchestrator holds a fresh *unfitted* pipeline —
    /// call [`Sintel::fit`] again before the next detection.
    pub fn detect(&mut self, data: &Signal) -> Result<Vec<ScoredInterval>> {
        let placeholder = self.template.build(&self.lambda)?;
        let fitted = std::mem::replace(&mut self.pipeline, placeholder);
        let data_owned = data.clone();
        let pipeline_name = self.pipeline_name().to_string();
        let outcome = run_guarded(self.policy.timeout, move || {
            let _span = sintel_obs::span_with(
                "sintel.detect",
                &[
                    ("pipeline", FieldValue::from(pipeline_name.as_str())),
                    ("signal", FieldValue::from(data_owned.name())),
                ],
            );
            let mut pipeline = fitted;
            let result = pipeline.detect(&data_owned);
            (pipeline, result)
        });
        let anomalies = match outcome {
            GuardedResult::Done((pipeline, result)) => {
                self.pipeline = pipeline;
                result?
            }
            GuardedResult::Panicked(message) => {
                return Err(SintelError::Pipeline(format!("primitive panicked: {message}")))
            }
            GuardedResult::TimedOut => {
                return Err(SintelError::Pipeline(format!(
                    "detection exceeded the {:?} run budget",
                    self.policy.timeout
                )))
            }
        };
        if let Some(db) = &self.db {
            self.signalrun_counter += 1;
            let run = db.add_signalrun(self.signalrun_counter, data.name(), "done");
            for a in &anomalies {
                db.add_event(run, data.name(), a.interval.start, a.interval.end, a.score);
            }
        }
        Ok(anomalies)
    }

    /// Fit on `train`, detect on `test`.
    pub fn fit_detect(&mut self, train: &Signal, test: &Signal) -> Result<Vec<ScoredInterval>> {
        self.fit(train)?;
        self.detect(test)
    }

    /// Detect and score against ground truth with the chosen metric.
    pub fn evaluate(
        &mut self,
        data: &Signal,
        ground_truth: &[Interval],
        metric: MetricKind,
    ) -> Result<Scores> {
        let detected = self.detect(data)?;
        let pred: Vec<Interval> = detected.iter().map(|d| d.interval).collect();
        Ok(score(ground_truth, &pred, metric))
    }

    /// AutoML (Figure 4b): search the template's joint hyperparameter
    /// space and adopt the best configuration found. Returns the tuning
    /// report; the orchestrator keeps the improved pipeline.
    pub fn tune(
        &mut self,
        data: &Signal,
        setting: TuneSetting,
        budget: usize,
    ) -> Result<TuneReport> {
        let report = tune::tune_template(&self.template, data, &setting, budget)?;
        self.lambda = report.best_lambda.clone();
        // `fit` rebuilds from template + λ* under the fault-isolation
        // layer, so the orchestrator keeps the improved pipeline.
        self.fit(data)?;
        Ok(report)
    }
}

/// Score predictions against ground truth with the given metric.
pub fn score(truth: &[Interval], pred: &[Interval], metric: MetricKind) -> Scores {
    if truth.is_empty() && pred.is_empty() {
        return Scores::perfect();
    }
    match metric {
        MetricKind::Overlap => overlapping_segment(truth, pred).scores(),
        MetricKind::Weighted => weighted_segment(truth, pred).scores(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SintelError;
    use sintel_datasets::load_signal;

    #[test]
    fn figure_4a_workflow_end_to_end() {
        // load -> pick pipeline -> fit -> detect, exactly Figure 4a.
        let train = load_signal("S-2-train").unwrap();
        let new_data = load_signal("S-2-new").unwrap();
        let mut sintel = Sintel::new("arima").unwrap();
        sintel.fit(&train.signal).unwrap();
        let anomalies = sintel.detect(&new_data.signal).unwrap();
        assert!(!anomalies.is_empty(), "S-2 anomalies not detected");
        // Quality against the demo ground truth.
        let pred: Vec<Interval> = anomalies.iter().map(|a| a.interval).collect();
        let s = score(&new_data.anomalies, &pred, MetricKind::Overlap);
        assert!(s.recall > 0.3, "recall {:?}", s);
    }

    #[test]
    fn unknown_pipeline_name() {
        assert!(matches!(Sintel::new("prophet"), Err(SintelError::Pipeline(_))));
    }

    #[test]
    fn detection_persists_events_to_db() {
        let train = load_signal("S-2-train").unwrap();
        let new_data = load_signal("S-2-new").unwrap();
        let mut sintel =
            Sintel::new("arima").unwrap().with_db(SintelDb::in_memory());
        sintel.fit(&train.signal).unwrap();
        let anomalies = sintel.detect(&new_data.signal).unwrap();
        let events = sintel.db().unwrap().events_for_signal("S-2");
        assert_eq!(events.len(), anomalies.len());
        assert!(!events.is_empty());
    }

    #[test]
    fn evaluate_returns_scores() {
        let full = load_signal("S-2").unwrap();
        let mut sintel = Sintel::new("arima").unwrap();
        sintel.fit(&full.signal).unwrap();
        let s = sintel
            .evaluate(&full.signal, &full.anomalies, MetricKind::Overlap)
            .unwrap();
        assert!(s.f1 > 0.0, "{s:?}");
        let sw = sintel
            .evaluate(&full.signal, &full.anomalies, MetricKind::Weighted)
            .unwrap();
        assert!(sw.accuracy >= 0.0);
    }

    #[test]
    fn score_empty_sets_is_perfect() {
        let s = score(&[], &[], MetricKind::Overlap);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn custom_template_path() {
        use sintel_pipeline::{StepSpec, Template};
        use sintel_primitives::HyperValue;
        let template = Template {
            name: "custom_zscore".into(),
            steps: vec![
                StepSpec::plain("time_segments_aggregate"),
                StepSpec::plain("SimpleImputer"),
                // The paper's customisation example: swap the scaler.
                StepSpec::plain("StandardScaler"),
                StepSpec::with("arima", &[("p", HyperValue::Int(3))]),
                StepSpec::plain("regression_errors"),
                StepSpec::plain("find_anomalies"),
            ],
        };
        let full = load_signal("S-2").unwrap();
        let mut sintel = Sintel::from_template(template).unwrap();
        sintel.fit(&full.signal).unwrap();
        assert_eq!(sintel.pipeline_name(), "custom_zscore");
        let anomalies = sintel.detect(&full.signal).unwrap();
        assert!(!anomalies.is_empty());
    }
}

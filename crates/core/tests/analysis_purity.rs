//! The static analyzer is pure: gating pipeline construction on
//! `Template::analyze` must not perturb detection results by a single
//! bit. The hub path (analyze-then-build) and the raw
//! `Template::build_default` path must produce identical anomalies.
//! Covers the cheap non-NN templates (arima, azure, matrix_profile,
//! holt_winters) so the whole non-training analyzer surface — shape
//! and cost passes included — is exercised against real detection runs.

use sintel_datasets::demo::load_signal;
use sintel_pipeline::hub;

#[test]
fn analyzer_gated_build_is_bitwise_identical_to_raw_build() {
    let labeled = load_signal("S-1").expect("demo signal");
    let signal = &labeled.signal;

    for name in ["arima", "azure_anomaly_detection", "matrix_profile", "holt_winters"] {
        // Hub path: analyze (Error-gated) then build.
        let mut gated = hub::build_pipeline(name).unwrap();
        let gated_anomalies = gated.fit_detect(signal, signal).unwrap();

        // Raw path: build the same template without running the analyzer
        // gate.
        let mut raw = hub::template_by_name(name).unwrap().build_default().unwrap();
        let raw_anomalies = raw.fit_detect(signal, signal).unwrap();

        assert_eq!(gated_anomalies.len(), raw_anomalies.len(), "{name}");
        for (a, b) in gated_anomalies.iter().zip(&raw_anomalies) {
            assert_eq!(a.interval.start, b.interval.start, "{name}");
            assert_eq!(a.interval.end, b.interval.end, "{name}");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{name}: score drifted ({} vs {})",
                a.score,
                b.score
            );
        }
    }
}

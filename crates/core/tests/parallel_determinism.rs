//! The determinism contract of the parallel substrate, proven end to
//! end: a full benchmark sweep and a tuning run must produce **bitwise
//! identical** scores, rendered tables, persisted store bytes and trial
//! histories for *any* `SINTEL_THREADS` value.
//!
//! Work decomposition is a function of the input, never of the thread
//! count — these tests are the enforcement. Lives in its own
//! integration binary because the thread budget and the obs state are
//! process-global; tests serialize on a mutex.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use sintel::benchmark::{
    benchmark_report_with_db, persist_benchmark, render_table, BenchmarkConfig, MetricKind,
};
use sintel::policy::RunPolicy;
use sintel::tune::{tune_template, TuneSetting};
use sintel_datasets::{DatasetConfig, DatasetId};
use sintel_pipeline::{StepSpec, Template};
use sintel_primitives::HyperValue;
use sintel_store::SintelDb;
use sintel_timeseries::{Interval, Signal};

/// Serializes tests: the thread budget override is process-global.
static GUARD: Mutex<()> = Mutex::new(());

/// The contract holds for every value; 1 covers the serial path, 2 and
/// 8 cover under- and over-subscription of the cell grid.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn sweep_config() -> BenchmarkConfig {
    BenchmarkConfig {
        pipelines: vec!["arima".into(), "azure_anomaly_detection".into()],
        datasets: vec![DatasetId::Nab],
        data: DatasetConfig { seed: 42, signal_scale: 0.05, length_scale: 0.08 },
        metric: MetricKind::Overlap,
        rank: "f1",
        policy: RunPolicy {
            timeout: Duration::from_secs(60),
            max_retries: 0,
            backoff: Duration::ZERO,
        },
        ..BenchmarkConfig::default()
    }
}

/// Run one sweep at a given thread budget, returning the rendered
/// table and the persisted store as scrubbed JSONL bytes.
fn sweep_at(threads: usize, dir: &PathBuf) -> (String, Vec<(String, String)>) {
    sintel_common::set_threads(Some(threads));
    let _ = std::fs::remove_dir_all(dir);
    let db = SintelDb::open(dir).expect("open store");
    let report = benchmark_report_with_db(&sweep_config(), Some(&db)).expect("sweep runs");
    assert_eq!(report.threads, threads);
    persist_benchmark(&db, &report.rows);
    db.save().expect("persist store");
    (render_table(&report.rows), store_files(dir))
}

/// Wall-clock timings, memory peaks and metric histogram bodies are
/// genuinely scheduling-dependent; everything else in the store must be
/// byte-identical. Scrub exactly those fields, preserving structure.
const VOLATILE_FIELDS: [&str; 5] =
    ["train_seconds", "detect_seconds", "peak_memory_bytes", "prometheus", "json"];

fn scrub_line(line: &str) -> String {
    let doc = sintel_store::json::from_json(line).expect("store line parses");
    let mut doc = doc;
    for field in VOLATILE_FIELDS {
        if doc.get(field).is_some() {
            doc = doc.with(field, "<volatile>");
        }
    }
    sintel_store::json::to_json(&doc)
}

/// Every persisted collection file, sorted by name, with volatile
/// fields masked line by line.
fn store_files(dir: &PathBuf) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .map(|p| {
            let name = p.file_name().expect("file name").to_string_lossy().into_owned();
            let raw = std::fs::read_to_string(&p).expect("collection readable");
            let scrubbed: String =
                raw.lines().map(|l| scrub_line(l) + "\n").collect();
            (name, scrubbed)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn benchmark_is_bitwise_identical_at_every_thread_count() {
    let _lock = GUARD.lock().expect("guard");
    let dir = std::env::temp_dir().join(format!(
        "sintel-par-det-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));

    let (baseline_table, baseline_store) = sweep_at(THREAD_COUNTS[0], &dir);
    assert!(baseline_table.contains("arima"), "sweep produced no arima row");
    assert!(
        baseline_store.iter().any(|(name, _)| name == "benchmark_results.jsonl"),
        "store must contain persisted benchmark results: {:?}",
        baseline_store.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );

    for &threads in &THREAD_COUNTS[1..] {
        let (table, store) = sweep_at(threads, &dir);
        assert_eq!(
            table, baseline_table,
            "render_table differs between 1 and {threads} threads"
        );
        assert_eq!(
            store.len(),
            baseline_store.len(),
            "store collection set differs at {threads} threads"
        );
        for ((name_a, body_a), (name_b, body_b)) in baseline_store.iter().zip(&store) {
            assert_eq!(name_a, name_b);
            assert_eq!(
                body_a, body_b,
                "persisted bytes of {name_a} differ between 1 and {threads} threads"
            );
        }
    }

    sintel_common::set_threads(None);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-row scores, not just the rendered table: compare the raw f64
/// bits of every mean/std score across thread counts.
#[test]
fn benchmark_scores_are_bitwise_identical_at_every_thread_count() {
    let _lock = GUARD.lock().expect("guard");
    let cfg = sweep_config();

    let score_bits = |threads: usize| -> Vec<(String, [u64; 6])> {
        sintel_common::set_threads(Some(threads));
        let report = benchmark_report_with_db(&cfg, None).expect("sweep runs");
        report
            .rows
            .iter()
            .map(|r| {
                (
                    format!("{}/{}", r.dataset, r.pipeline),
                    [
                        r.mean.f1.to_bits(),
                        r.mean.precision.to_bits(),
                        r.mean.recall.to_bits(),
                        r.std.f1.to_bits(),
                        r.std.precision.to_bits(),
                        r.std.recall.to_bits(),
                    ],
                )
            })
            .collect()
    };

    let baseline = score_bits(THREAD_COUNTS[0]);
    assert!(!baseline.is_empty());
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            score_bits(threads),
            baseline,
            "scores drifted between 1 and {threads} threads"
        );
    }
    sintel_common::set_threads(None);
}

/// A deep pipeline exercising the vectorized compute kernels
/// (DESIGN.md §4j) on the hot path: windowing fills the flat arena,
/// training runs the fused LSTM step + blocked matmul, and batched
/// inference fans out across threads above the 64-window threshold.
fn deep_fixture() -> (Template, Signal) {
    let n = 280;
    let mut vals: Vec<f64> =
        (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 30.0).sin()).collect();
    for v in &mut vals[140..146] {
        *v += 4.0;
    }
    let template = Template {
        name: "deep_lstm".into(),
        steps: vec![
            StepSpec::plain("time_segments_aggregate"),
            StepSpec::plain("SimpleImputer"),
            StepSpec::plain("MinMaxScaler"),
            StepSpec::with(
                "rolling_window_sequences",
                &[("window_size", HyperValue::Int(10)), ("targets", HyperValue::Flag(true))],
            ),
            StepSpec::with(
                "lstm_regressor",
                &[("epochs", HyperValue::Int(2)), ("hidden", HyperValue::Int(8))],
            ),
            StepSpec::plain("regression_errors"),
            StepSpec::plain("find_anomalies"),
        ],
    };
    (template, Signal::from_values("deep", vals))
}

/// The full deep pipeline — fit, per-sample error series and detected
/// intervals — is bitwise-identical at every thread count with the
/// vectorized kernels on the hot path. The ~270 extracted windows put
/// `predict_batch` over its parallel threshold, so the blocked fan-out
/// itself is under test, not just the serial fallback.
#[test]
fn deep_pipeline_is_bitwise_identical_at_every_thread_count() {
    let _lock = GUARD.lock().expect("guard");
    let (template, signal) = deep_fixture();

    let run = |threads: usize| {
        sintel_common::set_threads(Some(threads));
        let mut pipeline = template.build_default().expect("pipeline builds");
        pipeline.fit(&signal).expect("fit runs");
        let (errors, ts) = pipeline.errors(&signal).expect("errors run");
        let anomalies = pipeline.detect(&signal).expect("detect runs");
        let error_bits: Vec<u64> = errors.iter().map(|e| e.to_bits()).collect();
        let intervals: Vec<(i64, i64, u64)> = anomalies
            .iter()
            .map(|a| (a.interval.start, a.interval.end, a.score.to_bits()))
            .collect();
        (error_bits, ts, intervals)
    };

    let baseline = run(THREAD_COUNTS[0]);
    assert!(!baseline.0.is_empty(), "deep pipeline produced no errors");
    assert!(!baseline.2.is_empty(), "deep pipeline found no anomalies");
    for &threads in &THREAD_COUNTS[1..] {
        let other = run(threads);
        assert_eq!(
            other.0, baseline.0,
            "error series drifted between 1 and {threads} threads"
        );
        assert_eq!(other.1, baseline.1, "timestamps drifted at {threads} threads");
        assert_eq!(
            other.2, baseline.2,
            "detected intervals drifted between 1 and {threads} threads"
        );
    }
    sintel_common::set_threads(None);
}

fn tune_fixture() -> (Template, Signal, Vec<Interval>) {
    let n = 500;
    let mut vals: Vec<f64> =
        (0..n).map(|t| (std::f64::consts::TAU * t as f64 / 40.0).sin()).collect();
    for v in &mut vals[250..260] {
        *v += 5.0;
    }
    let template = Template {
        name: "tune_arima".into(),
        steps: vec![
            StepSpec::plain("time_segments_aggregate"),
            StepSpec::plain("SimpleImputer"),
            StepSpec::plain("MinMaxScaler"),
            StepSpec::plain("arima"),
            StepSpec::plain("regression_errors"),
            StepSpec::plain("find_anomalies"),
        ],
    };
    let truth = vec![Interval::new(250, 259).expect("valid interval")];
    (template, Signal::from_values("tune", vals), truth)
}

/// The batched GP tuner evaluates candidate batches concurrently but
/// must record them in proposal order: the full trial history — and
/// therefore every subsequent GP posterior — is identical at any
/// thread count.
#[test]
fn tuner_history_is_bitwise_identical_at_every_thread_count() {
    let _lock = GUARD.lock().expect("guard");
    let (template, signal, truth) = tune_fixture();
    let budget = 10;

    let run = |threads: usize| {
        sintel_common::set_threads(Some(threads));
        let report = tune_template(
            &template,
            &signal,
            &TuneSetting::Supervised { ground_truth: truth.clone() },
            budget,
        )
        .expect("tuning runs");
        let history_bits: Vec<u64> = report.history.iter().map(|s| s.to_bits()).collect();
        (
            history_bits,
            report.best_score.to_bits(),
            report.default_score.to_bits(),
            report.best_lambda.clone(),
            report.rejected_trials,
        )
    };

    let baseline = run(THREAD_COUNTS[0]);
    assert_eq!(baseline.0.len(), budget + 1, "history covers default + budget trials");
    for &threads in &THREAD_COUNTS[1..] {
        let other = run(threads);
        assert_eq!(
            other, baseline,
            "tuner trajectory drifted between 1 and {threads} threads"
        );
    }
    sintel_common::set_threads(None);
}

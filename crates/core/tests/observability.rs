//! End-to-end observability tests: a benchmark sweep emits a complete
//! nested span trace, a metrics snapshot with failure-kind counters and
//! latency histograms, persists the snapshot to the knowledge base —
//! and changes **nothing** about the detection scores.
//!
//! Lives in its own integration binary because the trace buffer, log
//! level and metrics registry are process-global; `#[test]` functions
//! here serialize on a mutex.

use std::sync::Mutex;
use std::time::Duration;

use sintel::benchmark::{benchmark, benchmark_with_db, BenchmarkConfig, MetricKind};
use sintel::policy::RunPolicy;
use sintel_datasets::{DatasetConfig, DatasetId};
use sintel_pipeline::{StepSpec, Template};
use sintel_store::SintelDb;

/// Serializes tests touching the process-global obs state.
static GUARD: Mutex<()> = Mutex::new(());

fn tiny_config() -> BenchmarkConfig {
    BenchmarkConfig {
        pipelines: vec!["arima".into()],
        datasets: vec![DatasetId::Nab],
        data: DatasetConfig { seed: 42, signal_scale: 0.05, length_scale: 0.08 },
        metric: MetricKind::Overlap,
        rank: "f1",
        policy: RunPolicy {
            timeout: Duration::from_secs(30),
            max_retries: 0,
            backoff: Duration::ZERO,
        },
        ..BenchmarkConfig::default()
    }
}

fn panicky_template() -> Template {
    Template {
        name: "faulty_panic".into(),
        steps: vec![
            StepSpec::plain("time_segments_aggregate"),
            StepSpec::plain("SimpleImputer"),
            StepSpec::plain("MinMaxScaler"),
            StepSpec::plain("faulty_panic"),
        ],
    }
}

#[test]
fn benchmark_emits_nested_spans_for_every_primitive_step() {
    let _lock = GUARD.lock().unwrap();
    sintel_obs::global().reset();
    sintel_obs::tracing_start();
    let rows = benchmark(&tiny_config()).unwrap();
    let events = sintel_obs::tracing_stop();
    assert_eq!(rows.len(), 1);
    let signals = rows[0].signals;
    assert!(signals > 0);

    let closes = |name: &str| {
        events
            .iter()
            .filter(|e| e.kind == sintel_obs::EventKind::Close && e.name == name)
            .collect::<Vec<_>>()
    };
    // One row span, one trial span per signal, one fit + one produce
    // run per trial (fit_detect), and per-primitive spans inside those.
    assert_eq!(closes("benchmark.row").len(), 1);
    assert_eq!(closes("benchmark.trial").len(), signals);
    assert_eq!(closes("pipeline.fit").len(), signals);
    assert_eq!(closes("pipeline.produce").len(), signals);
    let arima_steps = 6;
    assert_eq!(closes("primitive.fit").len(), signals * arima_steps);
    // fit() also runs produce over the training data, so each trial
    // produces two produce passes per step.
    assert_eq!(closes("primitive.produce").len(), signals * arima_steps * 2);

    // Nesting: pipeline runs sit inside a trial span, primitives inside
    // a pipeline run — the whole tree is connected.
    let ids_of = |name: &str| {
        events.iter().filter(|e| e.name == name).map(|e| e.id).collect::<Vec<u64>>()
    };
    let trial_ids = ids_of("benchmark.trial");
    let run_ids: Vec<u64> = events
        .iter()
        .filter(|e| e.name.starts_with("pipeline."))
        .map(|e| e.id)
        .collect();
    for e in events.iter().filter(|e| e.name.starts_with("pipeline.")) {
        assert!(e.parent.is_some_and(|p| trial_ids.contains(&p)), "{e:?}");
    }
    for e in events.iter().filter(|e| e.name.starts_with("primitive.")) {
        assert!(e.parent.is_some_and(|p| run_ids.contains(&p)), "{e:?}");
    }

    // The JSONL export of the full run parses back losslessly.
    let parsed = sintel_obs::parse_jsonl(&sintel_obs::export_jsonl(&events)).unwrap();
    assert_eq!(parsed, events);

    // Latency histograms saw every primitive execution.
    let snapshot = sintel_obs::global().snapshot();
    let fit_hist = snapshot.histogram("sintel_primitive_fit_seconds").unwrap();
    assert_eq!(fit_hist.count(), (signals * arima_steps) as u64);
    let produce_hist = snapshot.histogram("sintel_primitive_produce_seconds").unwrap();
    assert_eq!(produce_hist.count(), (signals * arima_steps * 2) as u64);
    assert!(snapshot.histogram("sintel_pipeline_fit_seconds").unwrap().count() > 0);
}

#[test]
fn detection_scores_are_bitwise_identical_with_instrumentation_on_and_off() {
    let _lock = GUARD.lock().unwrap();
    let cfg = tiny_config();

    // Instrumentation off: no tracing, logging disabled.
    sintel_obs::set_level(None);
    let off = benchmark(&cfg).unwrap();

    // Everything on: trace capture, trace-level logging into a capture
    // sink, fresh metrics registry.
    sintel_obs::global().reset();
    sintel_obs::set_level(Some(sintel_obs::Level::Trace));
    sintel_obs::capture_start();
    sintel_obs::tracing_start();
    let on = benchmark(&cfg).unwrap();
    let events = sintel_obs::tracing_stop();
    let logs = sintel_obs::capture_stop();
    sintel_obs::set_level(Some(sintel_obs::Level::Info));

    assert!(!events.is_empty());
    let _ = logs;
    assert_eq!(off.len(), on.len());
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a.signals, b.signals);
        for (x, y) in [
            (a.mean.f1, b.mean.f1),
            (a.mean.precision, b.mean.precision),
            (a.mean.recall, b.mean.recall),
            (a.std.f1, b.std.f1),
            (a.std.precision, b.std.precision),
            (a.std.recall, b.std.recall),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "scores drifted: {x} vs {y}");
        }
    }
}

#[test]
fn metrics_snapshot_counts_failures_and_persists_to_the_knowledge_base() {
    let _lock = GUARD.lock().unwrap();
    sintel_obs::global().reset();
    let mut cfg = tiny_config();
    cfg.extra_templates = vec![panicky_template()];
    let db = SintelDb::in_memory();
    let rows = benchmark_with_db(&cfg, Some(&db)).unwrap();
    let faulty = rows.iter().find(|r| r.pipeline == "faulty_panic").unwrap();
    assert!(faulty.failures.panic > 0);

    let snapshot = sintel_obs::global().snapshot();
    // Trial and failure-kind counters, including explicit zeros for the
    // kinds that never fired (pre-registered).
    assert_eq!(
        snapshot.counter("sintel_benchmark_trials_total"),
        Some((rows.iter().map(|r| r.signals).sum::<usize>() + faulty.failures.total()) as u64)
    );
    assert_eq!(
        snapshot.counter("sintel_benchmark_failures_total{kind=\"panic\"}"),
        Some(faulty.failures.panic as u64)
    );
    for kind in ["build", "timeout", "non_finite", "other"] {
        assert_eq!(
            snapshot.counter(&format!("sintel_benchmark_failures_total{{kind=\"{kind}\"}}")),
            Some(0),
            "missing pre-registered zero counter for {kind}"
        );
    }
    // run_with_policy's own counters fired too.
    assert!(snapshot.counter("sintel_run_attempts_total").unwrap() > 0);
    assert!(snapshot.counter("sintel_run_failures_total{kind=\"panic\"}").unwrap() > 0);

    // Health gauges summarize the sweep and the knowledge-base state.
    assert_eq!(snapshot.gauge("sintel_benchmark_rows"), Some(rows.len() as f64));
    assert_eq!(
        snapshot.gauge("sintel_benchmark_failure_breakdown{kind=\"panic\"}"),
        Some(faulty.failures.panic as f64)
    );
    assert!(snapshot.gauge("sintel_run_failure_records").unwrap() > 0.0);

    // The snapshot was persisted under the "benchmark" run label, in
    // both exporter formats.
    let stored = db.metrics_snapshots("benchmark");
    assert_eq!(stored.len(), 1);
    let prometheus = stored[0].get("prometheus").unwrap().as_str().unwrap();
    assert!(prometheus.contains("# TYPE sintel_benchmark_trials_total counter"));
    assert!(prometheus.contains("sintel_benchmark_failures_total{kind=\"panic\"}"));
    assert!(prometheus.contains("sintel_primitive_fit_seconds{quantile=\"0.99\"}"));
    let json = stored[0].get("json").unwrap().as_str().unwrap();
    assert!(json.contains("sintel_benchmark_trials_total"));
}

#[test]
fn policy_retries_are_counted_and_logged() {
    let _lock = GUARD.lock().unwrap();
    sintel_obs::global().reset();
    let mut cfg = tiny_config();
    cfg.pipelines = Vec::new();
    cfg.extra_templates = vec![panicky_template()];
    cfg.policy.max_retries = 2;

    sintel_obs::set_level(Some(sintel_obs::Level::Debug));
    sintel_obs::capture_start();
    let rows = benchmark(&cfg).unwrap();
    let logs = sintel_obs::capture_stop();
    sintel_obs::set_level(Some(sintel_obs::Level::Info));

    let faulty = &rows[0];
    assert!(faulty.failures.panic > 0);
    let snapshot = sintel_obs::global().snapshot();
    // Every trial burned 1 + max_retries attempts and 2 retries.
    let trials = faulty.failures.total() as u64;
    assert_eq!(snapshot.counter("sintel_run_attempts_total"), Some(3 * trials));
    assert_eq!(snapshot.counter("sintel_run_retries_total"), Some(2 * trials));

    // The structured log stream narrates the retries with fields.
    let retry_logs: Vec<_> = logs
        .iter()
        .filter(|r| r.target == "sintel::policy" && r.message.contains("retrying"))
        .collect();
    assert_eq!(retry_logs.len(), (2 * trials) as usize);
    assert!(retry_logs[0].render().contains("last_kind=panic"), "{}", retry_logs[0].render());
    assert!(logs
        .iter()
        .any(|r| r.target == "sintel::benchmark" && r.message.contains("exhausted")));
}

#[test]
fn tuner_trials_are_spanned_and_counted() {
    let _lock = GUARD.lock().unwrap();
    sintel_obs::global().reset();
    let template = Template {
        name: "tune_arima".into(),
        steps: vec![
            StepSpec::plain("time_segments_aggregate"),
            StepSpec::plain("SimpleImputer"),
            StepSpec::plain("MinMaxScaler"),
            StepSpec::plain("arima"),
            StepSpec::plain("regression_errors"),
            StepSpec::plain("find_anomalies"),
        ],
    };
    let vals: Vec<f64> =
        (0..400).map(|t| (std::f64::consts::TAU * t as f64 / 40.0).sin()).collect();
    let signal = sintel_timeseries::Signal::from_values("tune", vals);

    sintel_obs::tracing_start();
    let budget = 3;
    let report =
        sintel::tune::tune_template(&template, &signal, &sintel::tune::TuneSetting::Unsupervised, budget)
            .unwrap();
    let events = sintel_obs::tracing_stop();

    assert_eq!(report.history.len(), budget + 1);
    let trial_closes = events
        .iter()
        .filter(|e| e.kind == sintel_obs::EventKind::Close && e.name == "tune.trial")
        .count();
    assert_eq!(trial_closes, budget + 1);
    let snapshot = sintel_obs::global().snapshot();
    assert_eq!(snapshot.counter("sintel_tune_trials_total"), Some((budget + 1) as u64));
    let hist = snapshot.histogram("sintel_tune_trial_seconds").unwrap();
    assert_eq!(hist.count(), (budget + 1) as u64);
    assert!(hist.quantile(0.99) >= hist.quantile(0.5));
}

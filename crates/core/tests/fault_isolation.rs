//! Fault-isolation integration tests: a benchmark sweep over
//! deliberately broken pipelines (cargo feature `faulty` of
//! `sintel-primitives`) must complete, classify every failure, leave
//! healthy pipelines' scores untouched, and quarantine repeat
//! offenders.

use std::time::Duration;

use sintel::benchmark::{
    benchmark, benchmark_with_db, render_table, BenchmarkConfig, MetricKind,
};
use sintel::policy::RunPolicy;
use sintel_datasets::{DatasetConfig, DatasetId};
use sintel_pipeline::{StepSpec, Template};
use sintel_primitives::HyperValue;
use sintel_store::SintelDb;

fn data_config() -> DatasetConfig {
    DatasetConfig { seed: 42, signal_scale: 0.05, length_scale: 0.08 }
}

fn test_policy() -> RunPolicy {
    RunPolicy {
        timeout: Duration::from_millis(700),
        max_retries: 1,
        backoff: Duration::from_millis(1),
    }
}

/// A pipeline whose modeling step is one of the fault-injection
/// primitives; preprocessing is the healthy standard stack.
fn faulty_template(primitive: &str, overrides: &[(&str, HyperValue)]) -> Template {
    Template {
        name: primitive.to_string(),
        steps: vec![
            StepSpec::plain("time_segments_aggregate"),
            StepSpec::plain("SimpleImputer"),
            StepSpec::plain("MinMaxScaler"),
            StepSpec::with(primitive, overrides),
        ],
    }
}

fn faulty_config() -> BenchmarkConfig {
    BenchmarkConfig {
        pipelines: vec!["arima".into()],
        extra_templates: vec![
            faulty_template("faulty_panic", &[]),
            faulty_template("faulty_nan", &[]),
            // Sleep well past the 700 ms watchdog budget.
            faulty_template("faulty_hang", &[("sleep_ms", HyperValue::Int(4_000))]),
        ],
        datasets: vec![DatasetId::Nab],
        data: data_config(),
        metric: MetricKind::Overlap,
        rank: "f1",
        policy: test_policy(),
    }
}

#[test]
fn benchmark_survives_and_classifies_injected_faults() {
    let cfg = faulty_config();
    let rows = benchmark(&cfg).expect("fault-injected benchmark must complete");
    assert_eq!(rows.len(), 4, "{rows:?}");
    let row = |name: &str| rows.iter().find(|r| r.pipeline == name).unwrap();

    let healthy = row("arima");
    assert!(healthy.signals > 0);
    assert_eq!(healthy.failures.total(), 0, "{healthy:?}");

    // Every signal of each faulty pipeline fails, in its own class.
    let panic_row = row("faulty_panic");
    assert!(panic_row.failures.panic > 0, "{panic_row:?}");
    assert_eq!(panic_row.failures.total(), panic_row.failures.panic);
    assert_eq!(panic_row.signals, 0);

    let nan_row = row("faulty_nan");
    assert!(nan_row.failures.non_finite > 0, "{nan_row:?}");
    assert_eq!(nan_row.failures.total(), nan_row.failures.non_finite);

    let hang_row = row("faulty_hang");
    assert!(hang_row.failures.timeout > 0, "{hang_row:?}");
    assert_eq!(hang_row.failures.total(), hang_row.failures.timeout);

    // The failure classes show up in the rendered table.
    let table = render_table(&rows);
    assert!(table.contains("failures"));
    assert!(table.contains("panic"), "{table}");
    assert!(table.contains("timeout"), "{table}");
}

#[test]
fn healthy_scores_are_bitwise_identical_with_and_without_faults() {
    let faultless = BenchmarkConfig {
        pipelines: vec!["arima".into()],
        datasets: vec![DatasetId::Nab],
        data: data_config(),
        metric: MetricKind::Overlap,
        rank: "f1",
        policy: test_policy(),
        ..BenchmarkConfig::default()
    };
    let baseline_rows = benchmark(&faultless).unwrap();
    let baseline = baseline_rows.iter().find(|r| r.pipeline == "arima").unwrap();

    let rows = benchmark(&faulty_config()).unwrap();
    let contested = rows.iter().find(|r| r.pipeline == "arima").unwrap();

    assert_eq!(baseline.signals, contested.signals);
    for (a, b) in [
        (baseline.mean.f1, contested.mean.f1),
        (baseline.mean.precision, contested.mean.precision),
        (baseline.mean.recall, contested.mean.recall),
        (baseline.std.f1, contested.std.f1),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "healthy scores drifted: {a} vs {b}");
    }
}

#[test]
fn repeat_offenders_are_quarantined_on_the_next_sweep() {
    let mut cfg = faulty_config();
    // One fault class is enough to exercise the strike bookkeeping.
    cfg.extra_templates = vec![faulty_template("faulty_panic", &[])];

    let db = SintelDb::in_memory();
    let first = benchmark_with_db(&cfg, Some(&db)).unwrap();
    let first_faulty = first.iter().find(|r| r.pipeline == "faulty_panic").unwrap();
    assert!(first_faulty.failures.panic > 0);
    assert_eq!(first_faulty.quarantined, 0);

    // max_retries = 1 means each failed pair burned two attempts —
    // enough strikes to be quarantined for the next sweep.
    let signal = sintel_datasets::load(DatasetId::Nab, &cfg.data)
        .iter_signals()
        .next()
        .unwrap()
        .signal
        .name()
        .to_string();
    assert!(db.is_quarantined("faulty_panic", &signal));
    assert!(!db.is_quarantined("arima", &signal));

    let second = benchmark_with_db(&cfg, Some(&db)).unwrap();
    let second_faulty = second.iter().find(|r| r.pipeline == "faulty_panic").unwrap();
    assert_eq!(second_faulty.failures.total(), 0, "{second_faulty:?}");
    assert_eq!(second_faulty.quarantined, first_faulty.failures.total());

    // Healthy pipelines never hit the quarantine list.
    let second_healthy = second.iter().find(|r| r.pipeline == "arima").unwrap();
    assert_eq!(second_healthy.quarantined, 0);
    assert!(second_healthy.signals > 0);
}
